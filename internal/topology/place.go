package topology

import "fmt"

// Clone returns a deep copy of the tree, so a simulation can mutate
// placement without disturbing the caller's tree.
func (t *Tree) Clone() *Tree {
	nt := &Tree{
		Kind:   t.Kind,
		P:      t.P,
		Degree: t.Degree,
		Root:   t.Root,
		Levels: t.Levels,
	}
	nt.Counters = make([]Counter, len(t.Counters))
	for i, c := range t.Counters {
		nc := c
		nc.Children = append([]int(nil), c.Children...)
		nc.Procs = append([]int(nil), c.Procs...)
		nt.Counters[i] = nc
	}
	nt.first = append([]int(nil), t.first...)
	nt.ringOf = append([]int(nil), t.ringOf...)
	return nt
}

// CanSwap reports whether processor victor, currently placed on counter
// from, may take over the local slot of counter target. A swap is allowed
// when target is a proper ancestor of from, holds a local processor to
// displace, and lies in the victor's ring (ring-constrained trees never
// move processors across rings; the merge root has no local slot so it can
// never be a target).
func (t *Tree) CanSwap(victor, target int) bool {
	from := t.first[victor]
	if target == from {
		return false
	}
	tc := &t.Counters[target]
	if tc.Local == NoProc {
		return false
	}
	if tc.RingID != t.ringOf[victor] {
		return false
	}
	// target must be an ancestor of from.
	for c := t.Counters[from].Parent; c != NoCounter; c = t.Counters[c].Parent {
		if c == target {
			return true
		}
	}
	return false
}

// Swap moves processor victor into the local slot of counter target,
// displacing the victim (target's previous local) into the victor's old
// slot. It returns the victim processor ID. Fan-ins are unchanged. Callers
// should check CanSwap first; Swap panics on an illegal swap.
func (t *Tree) Swap(victor, target int) (victim int) {
	if !t.CanSwap(victor, target) {
		panic(fmt.Sprintf("topology: illegal swap of proc %d to counter %d", victor, target))
	}
	from := t.first[victor]
	victim = t.Counters[target].Local

	// Replace victor with victim on the old counter.
	replaceProc(&t.Counters[from], victor, victim)
	if t.Counters[from].Local == victor {
		t.Counters[from].Local = victim
	}
	// Replace victim with victor on the target counter.
	replaceProc(&t.Counters[target], victim, victor)
	t.Counters[target].Local = victor

	t.first[victor] = target
	t.first[victim] = from
	return victim
}

func replaceProc(c *Counter, old, new int) {
	for i, p := range c.Procs {
		if p == old {
			c.Procs[i] = new
			return
		}
	}
	panic(fmt.Sprintf("topology: processor %d not attached to counter %d", old, c.ID))
}

// Validate checks the structural invariants of the tree and returns an
// error describing the first violation found, or nil. Simulations validate
// trees after every swap in testing builds.
func (t *Tree) Validate() error {
	if t.P < 1 {
		return fmt.Errorf("topology: no processors")
	}
	if len(t.first) != t.P {
		return fmt.Errorf("topology: first-counter table has %d entries for %d processors", len(t.first), t.P)
	}
	if t.Root < 0 || t.Root >= len(t.Counters) {
		return fmt.Errorf("topology: root %d out of range", t.Root)
	}
	if t.Counters[t.Root].Parent != NoCounter {
		return fmt.Errorf("topology: root has a parent")
	}

	seen := make([]int, t.P) // attachment count per processor
	roots := 0
	for i := range t.Counters {
		c := &t.Counters[i]
		if c.ID != i {
			return fmt.Errorf("topology: counter %d has ID %d", i, c.ID)
		}
		if c.Parent == NoCounter {
			roots++
		} else {
			p := &t.Counters[c.Parent]
			if p.Level != c.Level+1 {
				return fmt.Errorf("topology: counter %d at level %d has parent at level %d", i, c.Level, p.Level)
			}
			if !contains(p.Children, i) {
				return fmt.Errorf("topology: counter %d missing from parent %d children", i, c.Parent)
			}
		}
		for _, ch := range c.Children {
			if t.Counters[ch].Parent != i {
				return fmt.Errorf("topology: child %d of counter %d has parent %d", ch, i, t.Counters[ch].Parent)
			}
		}
		if c.FanIn() < 1 {
			return fmt.Errorf("topology: counter %d has fan-in 0", i)
		}
		for _, p := range c.Procs {
			if p < 0 || p >= t.P {
				return fmt.Errorf("topology: counter %d attaches invalid processor %d", i, p)
			}
			seen[p]++
			if t.first[p] != i {
				return fmt.Errorf("topology: processor %d attached to counter %d but first counter is %d", p, i, t.first[p])
			}
		}
		if c.Local != NoProc && !contains(c.Procs, c.Local) {
			return fmt.Errorf("topology: counter %d local %d not among its processors", i, c.Local)
		}
	}
	if roots != 1 {
		return fmt.Errorf("topology: %d parentless counters, want 1", roots)
	}
	for p, n := range seen {
		if n != 1 {
			return fmt.Errorf("topology: processor %d attached %d times", p, n)
		}
	}
	// Every counter must reach the root (no cycles, single component).
	for i := range t.Counters {
		c, steps := i, 0
		for t.Counters[c].Parent != NoCounter {
			c = t.Counters[c].Parent
			if steps++; steps > len(t.Counters) {
				return fmt.Errorf("topology: cycle above counter %d", i)
			}
		}
		if c != t.Root {
			return fmt.Errorf("topology: counter %d reaches %d, not root %d", i, c, t.Root)
		}
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Stats summarizes a tree's shape.
type Stats struct {
	Counters  int     // number of counters
	Levels    int     // counter layers
	MaxFanIn  int     // largest fan-in
	MeanDepth float64 // mean over processors of Depth(FirstCounter)
	MaxDepth  int     // largest processor depth
}

// ShapeStats computes the tree's shape summary.
func (t *Tree) ShapeStats() Stats {
	s := Stats{Counters: len(t.Counters), Levels: t.Levels, MaxFanIn: t.MaxFanIn()}
	total := 0
	for p := 0; p < t.P; p++ {
		d := t.Depth(t.first[p])
		total += d
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	s.MeanDepth = float64(total) / float64(t.P)
	return s
}
