package topology

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Property: interleaving Clone with legal Swaps — on the original and on
// any clone, in any order — keeps every tree in the resulting family
// valid, and no swap applied to one tree leaks into another. This is the
// exact usage pattern of the reconfiguration core, which clones the
// current epoch's tree, mutates the clone, and publishes it while waiters
// still traverse the original.
func TestCloneSwapSequencePreservesValidity(t *testing.T) {
	bases := []func() *Tree{
		func() *Tree { return NewMCS(96, 4) },
		func() *Tree { return NewClassic(64, 8) },
		func() *Tree { return NewRing([]int{5, 4, 3}, 3) },
	}
	f := func(base uint8, ops []uint16) bool {
		family := []*Tree{bases[int(base)%len(bases)]()}
		for _, op := range ops {
			tr := family[int(op>>13)%len(family)]
			if op%5 == 0 && len(family) < 8 {
				family = append(family, tr.Clone())
				continue
			}
			victor := int(op) % tr.P
			target := int(op>>3) % tr.NumCounters()
			if tr.CanSwap(victor, target) {
				tr.Swap(victor, target)
			}
		}
		for _, tr := range family {
			if tr.Validate() != nil {
				return false
			}
		}
		// Clones must be independent: trees in the family may have diverged,
		// but each one individually still satisfies every invariant (checked
		// above); cross-leakage would corrupt first/ringOf maps and fail
		// Validate on the victim.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// FuzzNewRing feeds adversarial ring-size lists — empty, zero, negative,
// undersized first rings, and byte patterns decoding to huge values — and
// asserts the constructor is total: invalid inputs panic with a
// diagnostic (never an index error deeper in), and every accepted input
// yields a tree that passes Validate with the advertised processor count.
func FuzzNewRing(f *testing.F) {
	f.Add([]byte{0, 4, 0, 3}, uint8(4))       // healthy two-ring layout
	f.Add([]byte{}, uint8(2))                 // no rings
	f.Add([]byte{0, 0}, uint8(3))             // zero-size ring
	f.Add([]byte{0xff, 0xff}, uint8(3))       // negative ring size
	f.Add([]byte{0, 1, 0, 9}, uint8(2))       // first ring too small to staff the merge root
	f.Add([]byte{0x7f, 0xff, 0, 2}, uint8(5)) // huge first ring
	f.Fuzz(func(t *testing.T, data []byte, dRaw uint8) {
		d := int(dRaw%30) + 2
		sizes := make([]int, 0, len(data)/2)
		total := 0
		for i := 0; i+1 < len(data); i += 2 {
			s := int(int16(binary.BigEndian.Uint16(data[i:])))
			sizes = append(sizes, s)
			if s > 0 {
				total += s
			}
		}
		if total > 1<<12 {
			t.Skip("tree larger than the fuzz budget")
		}
		wantPanic := len(sizes) == 0 || (len(sizes) > 1 && sizes[0] < 2)
		for _, s := range sizes {
			if s < 1 {
				wantPanic = true
			}
		}
		defer func() {
			r := recover()
			if wantPanic && r == nil {
				t.Errorf("NewRing(%v, %d) accepted invalid ring sizes", sizes, d)
			}
			if !wantPanic && r != nil {
				t.Errorf("NewRing(%v, %d) panicked on valid input: %v", sizes, d, r)
			}
		}()
		tr := NewRing(sizes, d)
		if err := tr.Validate(); err != nil {
			t.Errorf("NewRing(%v, %d) built an invalid tree: %v", sizes, d, err)
		}
		if tr.P != total {
			t.Errorf("NewRing(%v, %d).P = %d, want %d", sizes, d, tr.P, total)
		}
	})
}
