package topology

import (
	"fmt"
	"sort"
)

// PlaceByDepth returns a clone of the tree with processors reassigned to
// attachment slots by depth: order[0] takes the shallowest slot (for an
// MCS tree, the root's local slot), order[1] the next shallowest, and so
// on down to the deepest leaves. order must be a permutation of
// 0..P-1 — typically the laggiest-first ranking from a lag profile — so
// consistently late processors sit adjacent to the root and early ones at
// the leaves. Slot structure (counter layout, fan-ins, which slots are
// local) is unchanged; only which processor occupies which slot moves.
//
// Ring-constrained trees are refused: a processor's ring is physical and
// relabeling across rings would teleport it to another ring's memory.
func (t *Tree) PlaceByDepth(order []int) (*Tree, error) {
	if t.Kind == Ring {
		return nil, fmt.Errorf("topology: PlaceByDepth cannot relabel a ring-constrained tree")
	}
	if len(order) != t.P {
		return nil, fmt.Errorf("topology: order has %d entries for %d processors", len(order), t.P)
	}
	seen := make([]bool, t.P)
	for _, p := range order {
		if p < 0 || p >= t.P || seen[p] {
			return nil, fmt.Errorf("topology: order is not a permutation of 0..%d", t.P-1)
		}
		seen[p] = true
	}

	// Enumerate the attachment slots, shallowest first. Ties break by
	// counter id then slot index, so the assignment is deterministic.
	type slot struct {
		counter int
		idx     int // index into Counters[counter].Procs
		depth   int
	}
	var slots []slot
	for ci := range t.Counters {
		d := t.Depth(ci)
		for i := range t.Counters[ci].Procs {
			slots = append(slots, slot{counter: ci, idx: i, depth: d})
		}
	}
	sort.SliceStable(slots, func(a, b int) bool {
		if slots[a].depth != slots[b].depth {
			return slots[a].depth < slots[b].depth
		}
		if slots[a].counter != slots[b].counter {
			return slots[a].counter < slots[b].counter
		}
		return slots[a].idx < slots[b].idx
	})

	nt := t.Clone()
	for k, s := range slots {
		p := order[k]
		old := t.Counters[s.counter].Procs[s.idx]
		nt.Counters[s.counter].Procs[s.idx] = p
		if t.Counters[s.counter].Local == old {
			nt.Counters[s.counter].Local = p
		}
		nt.first[p] = s.counter
		nt.ringOf[p] = t.ringOf[old]
	}
	return nt, nil
}
