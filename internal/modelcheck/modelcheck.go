// Package modelcheck exhaustively verifies the dynamic-placement barrier
// protocol by explicit-state exploration: it models every lock-protected
// step of the algorithm (victim check, redirect adoption, counter update,
// victor swap, release) as one atomic transition and breadth-first
// explores ALL interleavings of all participants across several episodes,
// checking at every state that
//
//   - the barrier never releases an episode before all participants
//     arrived (safety),
//   - every reachable state can make progress until all episodes complete
//     (deadlock freedom, by construction of the exploration),
//   - each episode releases exactly once, and
//   - at quiescence every counter's occupancy matches its fan-in and all
//     counts are reset (the liveness-critical placement invariant).
//
// The model mirrors softbarrier.DynamicBarrier step for step (the
// differential tests in the root package tie the two to the simulator,
// which ties them to each other); state spaces stay tractable for the
// small shapes that already exercise every protocol transition.
package modelcheck

import (
	"fmt"
	"sort"

	"softbarrier/internal/topology"
)

// phase is a participant's position in its episode's step sequence.
type phase uint8

const (
	// phIdle: before the episode's first step (the arrival point).
	phIdle phase = iota
	// phCheck: about to inspect its first counter's eviction fields.
	phCheck
	// phAdopt: redirected; about to claim the destination counter.
	phAdopt
	// phUpdate: about to increment the current counter.
	phUpdate
	// phSwap: completed the current counter; about to swap into it.
	phSwap
	// phWait: finished its ascent; waiting for the release.
	phWait
	// phDone: all episodes completed.
	phDone
)

// procState is one participant's model state.
type procState struct {
	phase   phase
	first   int // its first counter
	cur     int // counter being operated on (phUpdate/phSwap)
	dest    int // adopted destination (phAdopt)
	episode int // episodes completed
}

// counterState is one counter's model state.
type counterState struct {
	count       int
	local       int
	evicted     int
	destination int
}

// state is a full system configuration.
type state struct {
	procs    []procState
	counters []counterState
	released int // episodes released so far
	arrived  int // participants that began the current episode
}

// key encodes a state canonically for the visited set.
func (s *state) key() string {
	b := make([]byte, 0, 8*len(s.procs)+8*len(s.counters)+8)
	for _, p := range s.procs {
		b = append(b, byte(p.phase), byte(p.first+1), byte(p.cur+2), byte(p.dest+2), byte(p.episode))
	}
	for _, c := range s.counters {
		b = append(b, byte(c.count), byte(c.local+1), byte(c.evicted+1), byte(c.destination+2))
	}
	b = append(b, byte(s.released), byte(s.arrived))
	return string(b)
}

func (s *state) clone() *state {
	ns := &state{
		procs:    append([]procState(nil), s.procs...),
		counters: append([]counterState(nil), s.counters...),
		released: s.released,
		arrived:  s.arrived,
	}
	return ns
}

// Checker explores the protocol over a fixed topology.
type Checker struct {
	tree     *topology.Tree
	episodes int

	// Explored counts distinct states visited.
	Explored int

	// sabotageLateRootSwap (tests only) reorders the releaser's swap to
	// AFTER the release broadcast — the race the production implementation
	// explicitly avoids by swapping during the ascent (see DESIGN.md
	// §5.3). The checker must detect the resulting double-occupancy.
	sabotageLateRootSwap bool
}

// New creates a checker for the given tree and episode count. Trees with
// more than ~6 participants explode combinatorially; the constructor
// rejects configurations that would.
func New(tree *topology.Tree, episodes int) *Checker {
	if tree.P > 6 {
		panic("modelcheck: state space too large beyond 6 participants")
	}
	if episodes < 1 {
		panic("modelcheck: need at least one episode")
	}
	return &Checker{tree: tree, episodes: episodes}
}

// initial builds the start state from the topology.
func (c *Checker) initial() *state {
	s := &state{
		procs:    make([]procState, c.tree.P),
		counters: make([]counterState, len(c.tree.Counters)),
	}
	for i := range s.procs {
		s.procs[i] = procState{phase: phIdle, first: c.tree.FirstCounter(i), cur: -1, dest: -1}
	}
	for i := range s.counters {
		tc := &c.tree.Counters[i]
		s.counters[i] = counterState{local: tc.Local, evicted: topology.NoProc, destination: topology.NoCounter}
	}
	return s
}

// enabled returns the participants with a pending transition.
func (c *Checker) enabled(s *state) []int {
	var out []int
	for i := range s.procs {
		p := &s.procs[i]
		switch p.phase {
		case phDone:
		case phIdle:
			// May start its next episode once the previous one released.
			if p.episode == s.released && p.episode < c.episodes {
				out = append(out, i)
			}
		case phWait:
			// Wakes when its episode releases.
			if s.released > p.episode {
				out = append(out, i)
			}
		default:
			out = append(out, i)
		}
	}
	return out
}

// step applies participant id's next transition to a copy of s and
// reports a protocol violation if one occurs.
func (c *Checker) step(s *state, id int) (*state, error) {
	ns := s.clone()
	p := &ns.procs[id]
	switch p.phase {
	case phIdle:
		ns.arrived++
		p.phase = phCheck

	case phCheck:
		cn := &ns.counters[p.first]
		if cn.evicted == id {
			cn.evicted = topology.NoProc
			p.dest = cn.destination
			p.phase = phAdopt
		} else {
			p.cur = p.first
			p.phase = phUpdate
		}

	case phAdopt:
		dc := &ns.counters[p.dest]
		if len(c.tree.Counters[p.dest].Children) > 0 {
			dc.local = id
		}
		p.first = p.dest
		p.cur = p.dest
		p.dest = -1
		p.phase = phUpdate

	case phUpdate:
		cn := &ns.counters[p.cur]
		cn.count++
		fanIn := c.tree.Counters[p.cur].FanIn()
		if cn.count > fanIn {
			return nil, fmt.Errorf("counter %d overflowed fan-in %d", p.cur, fanIn)
		}
		if cn.count < fanIn {
			p.phase = phWait
			break
		}
		cn.count = 0
		if p.cur != p.first {
			if c.sabotageLateRootSwap && c.tree.Counters[p.cur].Parent == topology.NoCounter {
				// Buggy ordering: release now, swap afterwards.
				if err := c.release(ns); err != nil {
					return nil, err
				}
				p.phase = phSwap
				break
			}
			p.phase = phSwap
		} else if err := c.advance(ns, id); err != nil {
			return nil, err
		}

	case phSwap:
		cn := &ns.counters[p.cur]
		if cn.local != topology.NoProc && c.ringOK(id, p.cur) {
			cn.evicted = cn.local
			cn.destination = p.first
			cn.local = id
			p.first = p.cur
		}
		if c.sabotageLateRootSwap && c.tree.Counters[p.cur].Parent == topology.NoCounter {
			// The release already happened before this (buggy) late swap.
			p.phase = phIdle
			p.episode++
			break
		}
		if err := c.advance(ns, id); err != nil {
			return nil, err
		}

	case phWait:
		p.phase = phIdle
		p.episode++

	default:
		return nil, fmt.Errorf("participant %d stepped in phase %d", id, p.phase)
	}
	return ns, nil
}

// advance moves participant id from its just-completed counter to the
// parent, or releases the episode at the root.
func (c *Checker) advance(s *state, id int) error {
	p := &s.procs[id]
	parent := c.tree.Counters[p.cur].Parent
	if parent != topology.NoCounter {
		p.cur = parent
		p.phase = phUpdate
		return nil
	}
	// Root completed: release.
	if err := c.release(s); err != nil {
		return err
	}
	p.phase = phIdle
	p.episode++
	return nil
}

// release fires the episode's release, checking the safety property.
func (c *Checker) release(s *state) error {
	if s.arrived < c.tree.P {
		return fmt.Errorf("premature release: only %d of %d participants arrived", s.arrived, c.tree.P)
	}
	s.released++
	s.arrived = 0
	return nil
}

func (c *Checker) ringOK(id, counter int) bool {
	return c.tree.Counters[counter].RingID == c.tree.RingOf(id)
}

// checkQuiescent validates the placement invariant when every participant
// is idle between episodes.
func (c *Checker) checkQuiescent(s *state) error {
	for i := range s.procs {
		if ph := s.procs[i].phase; ph != phIdle && ph != phDone {
			return nil // not quiescent; nothing to check
		}
	}
	occupants := make(map[int]int)
	for i := range s.procs {
		fc := s.procs[i].first
		if cn := &s.counters[fc]; cn.evicted == i {
			fc = cn.destination
		}
		occupants[fc]++
	}
	for i := range s.counters {
		want := c.tree.Counters[i].FanIn() - len(c.tree.Counters[i].Children)
		if occupants[i] != want {
			return fmt.Errorf("quiescent occupancy of counter %d is %d, want %d", i, occupants[i], want)
		}
		if s.counters[i].count != 0 {
			return fmt.Errorf("counter %d count %d at quiescence", i, s.counters[i].count)
		}
	}
	return nil
}

// Run explores every interleaving. It returns an error describing the
// first violation found (with no violation it returns nil after visiting
// the full reachable state space).
func (c *Checker) Run() error {
	init := c.initial()
	visited := map[string]bool{init.key(): true}
	queue := []*state{init}
	c.Explored = 1
	finals := 0

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]

		en := c.enabled(s)
		if len(en) == 0 {
			// Terminal: legal only if every participant finished all
			// episodes.
			done := true
			for i := range s.procs {
				if s.procs[i].episode < c.episodes {
					done = false
					break
				}
			}
			if !done {
				return fmt.Errorf("deadlock: %s", describe(s))
			}
			if s.released != c.episodes {
				return fmt.Errorf("terminal state released %d episodes, want %d", s.released, c.episodes)
			}
			finals++
			continue
		}
		for _, id := range en {
			ns, err := c.step(s, id)
			if err != nil {
				return err
			}
			// Participants that have completed all episodes park in
			// phDone so termination detection is uniform.
			for i := range ns.procs {
				if ns.procs[i].phase == phIdle && ns.procs[i].episode >= c.episodes {
					ns.procs[i].phase = phDone
				}
			}
			if err := c.checkQuiescent(ns); err != nil {
				return err
			}
			k := ns.key()
			if !visited[k] {
				visited[k] = true
				c.Explored++
				queue = append(queue, ns)
			}
		}
	}
	if finals == 0 {
		return fmt.Errorf("no terminal state reached")
	}
	return nil
}

// describe renders a state for diagnostics.
func describe(s *state) string {
	var parts []string
	for i := range s.procs {
		p := &s.procs[i]
		parts = append(parts, fmt.Sprintf("p%d{ph=%d fc=%d ep=%d}", i, p.phase, p.first, p.episode))
	}
	sort.Strings(parts)
	return fmt.Sprintf("released=%d arrived=%d %v", s.released, s.arrived, parts)
}
