package modelcheck

import (
	"strings"
	"testing"

	"softbarrier/internal/topology"
)

func TestDynamicProtocolMCSTrees(t *testing.T) {
	// Exhaustive interleaving exploration of the dynamic-placement
	// protocol over small MCS trees and multiple episodes. Three episodes
	// exercise the full victim hand-off cycle (swap in ep k, victim
	// discovery in ep k+1, re-swap in ep k+2).
	for _, cfg := range []struct {
		p, d, episodes int
	}{
		{2, 2, 3},
		{3, 2, 3},
		{4, 2, 3},
		{5, 2, 2},
		{4, 3, 3},
	} {
		tree := topology.NewMCS(cfg.p, cfg.d)
		c := New(tree, cfg.episodes)
		if err := c.Run(); err != nil {
			t.Fatalf("p=%d d=%d episodes=%d: %v", cfg.p, cfg.d, cfg.episodes, err)
		}
		if c.Explored < 10 {
			t.Errorf("p=%d d=%d: only %d states explored — model too coarse?", cfg.p, cfg.d, c.Explored)
		}
		t.Logf("p=%d d=%d episodes=%d: %d states, no violations", cfg.p, cfg.d, cfg.episodes, c.Explored)
	}
}

func TestDynamicProtocolRingTree(t *testing.T) {
	// Ring-constrained tree: the merge root belongs to ring 0; swaps from
	// ring 1 must be refused without breaking liveness.
	tree := topology.NewRing([]int{3, 2}, 2)
	c := New(tree, 2)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	t.Logf("ring tree: %d states", c.Explored)
}

func TestCheckerRejectsOversize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized model")
		}
	}()
	New(topology.NewMCS(16, 4), 1)
}

func TestCheckerRejectsZeroEpisodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero episodes")
		}
	}()
	New(topology.NewMCS(2, 2), 0)
}

// Mutation check: the checker must actually catch protocol bugs. We
// reorder the releaser's swap to after the release — the race the
// production implementation avoids by swapping during the ascent — and
// expect a violation (the displaced victim and the victor both occupy the
// root counter in the next episode).
func TestCheckerCatchesLateRootSwap(t *testing.T) {
	tree := topology.NewMCS(4, 2)
	c := New(tree, 3)
	c.sabotageLateRootSwap = true
	err := c.Run()
	if err == nil {
		t.Fatal("sabotaged protocol passed the checker")
	}
	if !strings.Contains(err.Error(), "occupancy") &&
		!strings.Contains(err.Error(), "premature") &&
		!strings.Contains(err.Error(), "overflow") &&
		!strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unexpected violation kind: %v", err)
	}
	t.Logf("sabotage detected as: %v", err)
}
