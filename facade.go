package softbarrier

import "softbarrier/internal/model"

// OptimalDegree returns the combining-tree degree the paper's analytic
// model (§3–4) recommends for p participants whose arrival times have
// standard deviation sigma (seconds), given a counter update cost tc
// (seconds; 0 selects the paper's 20µs). The result is clamped to [2, p].
//
// The model is defined on full trees, so p is rounded up to the next power
// of two for the estimation; the paper shows the delay curve is flat
// enough around the optimum for this to cost only a few percent.
func OptimalDegree(p int, sigma, tc float64) int {
	if p < 2 {
		return 2
	}
	pUp := 2
	for pUp < p {
		pUp *= 2
	}
	d := model.EstimateOptimalDegree(pUp, sigma, tc).Degree
	if d > p {
		d = p
	}
	if d < 2 {
		d = 2
	}
	return d
}

// EstimateSyncDelay returns the analytic model's synchronization-delay
// estimate (Algorithm 1) for p participants, tree degree d, arrival
// standard deviation sigma and counter update cost tc. p must be a full
// power of d.
func EstimateSyncDelay(p, d int, sigma, tc float64) (float64, error) {
	return model.EstimateDelay(model.Params{P: p, Degree: d, Sigma: sigma, Tc: tc})
}

// ExpectedLastArrival returns the expected arrival time of the last of p
// participants whose arrival times are N(0, sigma²), using the paper's
// Eq. 5 order-statistics asymptote.
func ExpectedLastArrival(p int, sigma float64) float64 {
	return model.LastArrival(p, sigma)
}
