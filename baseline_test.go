package softbarrier

import (
	"sync"
	"testing"
	"time"
)

func TestDisseminationRounds(t *testing.T) {
	cases := []struct{ p, rounds int }{{1, 0}, {2, 1}, {3, 2}, {8, 3}, {9, 4}, {64, 6}}
	for _, c := range cases {
		if got := NewDissemination(c.p).Rounds(); got != c.rounds {
			t.Errorf("p=%d: rounds %d, want %d", c.p, got, c.rounds)
		}
		if got := NewTournament(c.p).Rounds(); got != c.rounds {
			t.Errorf("tournament p=%d: rounds %d, want %d", c.p, got, c.rounds)
		}
	}
}

func TestDisseminationNonPowerOfTwo(t *testing.T) {
	// The wraparound partner arithmetic must be correct for p not a power
	// of two.
	for _, p := range []int{3, 5, 7, 13} {
		checkBarrier(t, NewDissemination(p), p, 40)
	}
}

func TestTournamentNonPowerOfTwo(t *testing.T) {
	// Byes (missing opponents) must not stall the champion.
	for _, p := range []int{3, 5, 7, 13} {
		checkBarrier(t, NewTournament(p), p, 40)
	}
}

func TestDisseminationManyEpisodesParityCycling(t *testing.T) {
	// The parity/sense scheme reuses flag slots every other episode; a
	// long run catches stale-flag bugs.
	checkBarrier(t, NewDissemination(8), 8, 400)
}

func TestTournamentChampionLast(t *testing.T) {
	// Participant 0 (the champion) arriving last must still release
	// everyone.
	const p = 8
	b := NewTournament(p)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if id == 0 {
					time.Sleep(500 * time.Microsecond)
				}
				b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
}

func TestTreeWakeupOptionConformance(t *testing.T) {
	for _, p := range []int{1, 2, 7, 16} {
		b := NewCombiningTree(p, 4, WithTreeWakeup())
		checkBarrier(t, b, p, 60)
	}
}

func TestTreeWakeupWithMCS(t *testing.T) {
	b := NewMCSTree(12, 4, WithTreeWakeup())
	checkBarrierWithJitter(t, b, 12, 80)
}

func TestBaselineConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dissemination-0": func() { NewDissemination(0) },
		"tournament-0":    func() { NewTournament(0) },
	} {
		f := f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}
