package softbarrier

import (
	"context"
	"sync/atomic"

	rt "softbarrier/internal/runtime"
)

// CentralBarrier is the classic sense-reversing counter barrier: one shared
// counter plus a global sense flag. Its arrival cost is O(P) serialized
// updates, which is exactly the contention the combining trees exist to
// avoid — but when arrivals are spread much wider than the update time, the
// paper shows this flat barrier is in fact optimal (Fig. 3, large σ).
//
// Waiting and telemetry run on the shared internal/runtime core: Await
// follows the configured spin→yield→park policy (WithWaitPolicy), and an
// installed Observer (WithObserver) receives one EpisodeStats per episode.
type CentralBarrier struct {
	p     int
	count atomic.Int64
	_     [56]byte // keep the hot counter off the gate's generation line
	gate  rt.Gate
	local []rt.PaddedUint64 // per-participant sense snapshot, padded against false sharing
	rec   *rt.Recorder
	poisonCore
}

// NewCentral returns a sense-reversing barrier for p participants.
func NewCentral(p int, opts ...Option) *CentralBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	o := applyOptions(opts)
	b := &CentralBarrier{p: p, local: make([]rt.PaddedUint64, p)}
	b.gate.Init(o.policy)
	b.rec = o.recorder(p, false)
	b.initPoison(p, o.watchdog, o.poisonNotify,
		func() { b.gate.Poison() },
		func() {
			b.count.Store(0) // drop the aborted episode's partial arrivals
			b.gate.Unpoison()
		})
	return b
}

// Participants returns P.
func (b *CentralBarrier) Participants() int { return b.p }

// Wait blocks until all participants arrive.
func (b *CentralBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive increments the central counter; the last arriver flips the sense,
// releasing the episode. On a poisoned barrier it is a no-op.
func (b *CentralBarrier) Arrive(id int) {
	checkID(id, b.p)
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	sense := b.gate.Seq() // also the 0-based episode index
	b.rec.Arrive(id, sense)
	b.local[id].V = sense
	if b.count.Add(1) == int64(b.p) {
		b.count.Store(0)
		// Telemetry is read before the release: no participant can start
		// the next episode until the gate opens, so the slots are quiescent.
		b.rec.Release(sense, rt.Extra{})
		b.gate.Open()
	}
}

// Await blocks (spin → yield → park) until the sense flips or the barrier
// is poisoned.
func (b *CentralBarrier) Await(id int) {
	checkID(id, b.p)
	b.gate.Await(b.local[id].V)
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *CentralBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

// AwaitCtx is Await with cancellation, with WaitCtx's poison semantics.
func (b *CentralBarrier) AwaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Await(id) })
}

var _ PhasedBarrier = (*CentralBarrier)(nil)
var _ ContextBarrier = (*CentralBarrier)(nil)
