package softbarrier

import (
	"runtime"
	"sync/atomic"
)

// CentralBarrier is the classic sense-reversing counter barrier: one shared
// counter plus a global sense flag. Its arrival cost is O(P) serialized
// updates, which is exactly the contention the combining trees exist to
// avoid — but when arrivals are spread much wider than the update time, the
// paper shows this flat barrier is in fact optimal (Fig. 3, large σ).
type CentralBarrier struct {
	p     int
	count atomic.Int64
	sense atomic.Uint64
	local []paddedU64 // per-participant sense, padded against false sharing
}

// paddedU64 avoids false sharing between per-participant slots.
type paddedU64 struct {
	v uint64
	_ [56]byte
}

// NewCentral returns a sense-reversing barrier for p participants.
func NewCentral(p int) *CentralBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	return &CentralBarrier{p: p, local: make([]paddedU64, p)}
}

// Participants returns P.
func (b *CentralBarrier) Participants() int { return b.p }

// Wait blocks until all participants arrive.
func (b *CentralBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive increments the central counter; the last arriver flips the sense,
// releasing the episode.
func (b *CentralBarrier) Arrive(id int) {
	checkID(id, b.p)
	b.local[id].v = b.sense.Load()
	if b.count.Add(1) == int64(b.p) {
		b.count.Store(0)
		b.sense.Add(1)
	}
}

// Await spins (yielding to the scheduler) until the sense flips.
func (b *CentralBarrier) Await(id int) {
	checkID(id, b.p)
	mine := b.local[id].v
	for b.sense.Load() == mine {
		runtime.Gosched()
	}
}

var _ PhasedBarrier = (*CentralBarrier)(nil)
