package softbarrier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"softbarrier/internal/sor"
)

// barrierUnderTest enumerates every barrier implementation for the shared
// conformance tests.
func barriersUnderTest(p int) map[string]Barrier {
	flat := p
	if flat < 2 {
		flat = 2
	}
	return map[string]Barrier{
		"central":       NewCentral(p),
		"tree-d2":       NewCombiningTree(p, 2),
		"tree-d4":       NewCombiningTree(p, 4),
		"tree-flat":     NewCombiningTree(p, flat),
		"mcs-d4":        NewMCSTree(p, 4),
		"dynamic":       NewDynamic(p, 4),
		"adaptive":      NewAdaptive(p, 4, 0),
		"dissemination": NewDissemination(p),
		"tournament":    NewTournament(p),
	}
}

// checkBarrier runs p goroutines through episodes episodes and fails if any
// participant ever crosses the barrier before all have arrived.
func checkBarrier(t *testing.T, b Barrier, p, episodes int) {
	t.Helper()
	var arrived atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	fail := make(chan string, p*episodes)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for k := 0; k < episodes; k++ {
				arrived.Add(1)
				b.Wait(id)
				if got := arrived.Load(); got < int64((k+1)*p) {
					fail <- "crossed barrier early"
					return
				}
			}
		}(id)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if got := arrived.Load(); got != int64(p*episodes) {
		t.Fatalf("total arrivals %d, want %d", got, p*episodes)
	}
}

func TestBarrierConformance(t *testing.T) {
	const p, episodes = 8, 50
	for name, b := range barriersUnderTest(p) {
		b := b
		t.Run(name, func(t *testing.T) {
			if b.Participants() != p {
				t.Fatalf("Participants() = %d, want %d", b.Participants(), p)
			}
			checkBarrier(t, b, p, episodes)
		})
	}
}

func TestBarrierSingleParticipant(t *testing.T) {
	for name, b := range barriersUnderTest(1) {
		b := b
		t.Run(name, func(t *testing.T) {
			for k := 0; k < 10; k++ {
				b.Wait(0) // must never block
			}
		})
	}
}

func TestBarrierWithStaggeredArrivals(t *testing.T) {
	const p, episodes = 6, 20
	for name, b := range barriersUnderTest(p) {
		b := b
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			wg.Add(p)
			for id := 0; id < p; id++ {
				go func(id int) {
					defer wg.Done()
					for k := 0; k < episodes; k++ {
						if (k+id)%3 == 0 {
							time.Sleep(time.Duration(id) * 50 * time.Microsecond)
						}
						b.Wait(id)
					}
				}(id)
			}
			wg.Wait()
		})
	}
}

func TestCheckIDPanics(t *testing.T) {
	for name, b := range barriersUnderTest(4) {
		b := b
		t.Run(name, func(t *testing.T) {
			for _, id := range []int{-1, 4} {
				func() {
					defer func() {
						if recover() == nil {
							t.Errorf("Wait(%d) did not panic", id)
						}
					}()
					b.Wait(id)
				}()
			}
		})
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"central-0":        func() { NewCentral(0) },
		"tree-0":           func() { NewCombiningTree(0, 4) },
		"tree-degree-1":    func() { NewCombiningTree(8, 1) },
		"adaptive-0":       func() { NewAdaptive(0, 1, 0) },
		"adaptive-int":     func() { NewAdaptive(4, 0, 0) },
		"adaptive-neg-tc":  func() { NewAdaptive(4, 1, -1) },
		"dynamic-degree-1": func() { NewDynamic(8, 1) },
	} {
		f := f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestPhasedBarrierOverlapsWork(t *testing.T) {
	// Between Arrive and Await a participant may do independent work; the
	// episode must not complete before every Arrive, and Await must not
	// return before the episode completes.
	const p = 4
	for _, b := range []PhasedBarrier{NewCentral(p), NewCombiningTree(p, 2), NewDynamic(p, 2), NewAdaptive(p, 2, 0)} {
		var arrived atomic.Int64
		var wg sync.WaitGroup
		wg.Add(p)
		bad := make(chan string, p)
		for id := 0; id < p; id++ {
			go func(id int) {
				defer wg.Done()
				for k := 0; k < 20; k++ {
					arrived.Add(1)
					b.Arrive(id)
					// fuzzy-barrier slack region: independent work
					time.Sleep(10 * time.Microsecond)
					b.Await(id)
					if arrived.Load() < int64((k+1)*p) {
						bad <- "Await returned before all Arrive calls"
						return
					}
				}
			}(id)
		}
		wg.Wait()
		select {
		case msg := <-bad:
			t.Fatalf("%T: %s", b, msg)
		default:
		}
	}
}

func TestTreeBarrierShapeAccessors(t *testing.T) {
	b := NewCombiningTree(64, 4)
	if b.Degree() != 4 || b.Levels() != 3 {
		t.Fatalf("degree %d levels %d, want 4 and 3", b.Degree(), b.Levels())
	}
	m := NewMCSTree(64, 4)
	if m.Degree() != 4 {
		t.Fatalf("MCS degree %d", m.Degree())
	}
}

func TestDynamicSlowParticipantMigratesToRoot(t *testing.T) {
	// The paper's central claim for dynamic placement: a systemically slow
	// participant ends up attached to the root, synchronizing in depth 1.
	const p = 16
	b := NewDynamic(p, 4)
	slow := 3
	startDepth := b.DepthOf(slow)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				if id == slow {
					time.Sleep(2 * time.Millisecond)
				}
				b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	if got := b.DepthOf(slow); got != 1 {
		t.Errorf("slow participant depth %d after 25 episodes (started at %d), want 1", got, startDepth)
	}
	if b.Swaps() == 0 {
		t.Error("no swaps recorded")
	}
	// Everyone must still be placed exactly once: run more episodes to
	// prove the structure is still sound.
	checkBarrier(t, b, p, 10)
}

func TestDynamicRingNeverMigratesAcrossRings(t *testing.T) {
	runSlow := func(b *DynamicBarrier, slow int) {
		var wg sync.WaitGroup
		wg.Add(8)
		for id := 0; id < 8; id++ {
			go func(id int) {
				defer wg.Done()
				for k := 0; k < 20; k++ {
					if id == slow {
						time.Sleep(time.Millisecond)
					}
					b.Wait(id)
				}
			}(id)
		}
		wg.Wait()
	}

	// A slow ring-0 participant may take the merge root (it belongs to
	// ring 0), reaching depth 1.
	b0 := NewDynamicRing([]int{4, 4}, 2)
	runSlow(b0, 1)
	if got := b0.DepthOf(1); got != 1 {
		t.Errorf("slow ring-0 participant depth %d, want 1", got)
	}
	// A slow ring-1 participant is capped at its ring's subtree root
	// (depth 2): placement never crosses ring boundaries.
	b1 := NewDynamicRing([]int{4, 4}, 2)
	runSlow(b1, 5)
	if got := b1.DepthOf(5); got != 2 {
		t.Errorf("slow ring-1 participant depth %d, want 2", got)
	}
}

func TestDynamicPlacementChainConsistency(t *testing.T) {
	// Stress: random sleeps shuffle placement constantly; the barrier must
	// keep every episode correct (no early release, no deadlock).
	const p, episodes = 12, 120
	b := NewDynamic(p, 2) // deep tree: maximal swap activity
	checkBarrierWithJitter(t, b, p, episodes)
	if err := validateDynamicPlacement(b); err != "" {
		t.Fatal(err)
	}
}

func checkBarrierWithJitter(t *testing.T, b Barrier, p, episodes int) {
	t.Helper()
	var arrived atomic.Int64
	var wg sync.WaitGroup
	bad := make(chan string, p)
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for k := 0; k < episodes; k++ {
				if (id*7+k*13)%5 == 0 {
					time.Sleep(time.Duration((id*31+k*17)%200) * time.Microsecond)
				}
				arrived.Add(1)
				b.Wait(id)
				if arrived.Load() < int64((k+1)*p) {
					bad <- "crossed barrier early"
					return
				}
			}
		}(id)
	}
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}
}

// validateDynamicPlacement checks, at a quiescent point, the invariant
// that keeps the barrier live: after resolving pending evictions, every
// counter's occupancy equals its attached-participant fan-in, so the next
// episode's counts will complete exactly. (A vacated counter's Local entry
// may legitimately be stale until its incoming victim consumes the
// redirect, so Local itself is not validated here.)
func validateDynamicPlacement(b *DynamicBarrier) string {
	occupants := make(map[int]int)
	for id := 0; id < b.p; id++ {
		c := b.FirstCounterOf(id)
		if dc := &b.counters[c]; dc.evicted == id {
			c = dc.destination
		}
		occupants[c]++
	}
	for i := range b.counters {
		dc := &b.counters[i]
		wantProcs := b.tree.Counters[i].FanIn() - len(b.tree.Counters[i].Children)
		if occupants[i] != wantProcs {
			return "counter occupancy does not match its processor fan-in"
		}
		if dc.count != 0 {
			return "counter not reset at quiescence"
		}
	}
	return ""
}

func TestAdaptiveBarrierWidensUnderImbalance(t *testing.T) {
	const p = 8
	b := NewAdaptive(p, 3, 0) // tc = 20µs
	if b.Degree() != 4 {
		t.Fatalf("initial degree %d, want 4", b.Degree())
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 15; k++ {
				time.Sleep(time.Duration(id) * 400 * time.Microsecond)
				b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	// Arrival spread ≈ 1ms ≫ 20µs: the model should have widened the tree.
	if b.Degree() <= 4 {
		t.Errorf("degree %d after heavy imbalance, want > 4 (σ estimate %v)", b.Degree(), b.Sigma())
	}
	if b.Adaptations() == 0 {
		t.Error("no adaptations recorded")
	}
	if b.Sigma() <= 0 {
		t.Error("σ estimate not positive")
	}
}

func TestAdaptiveBarrierStaysNarrowWhenBalanced(t *testing.T) {
	const p = 8
	// With an (assumed) counter update cost of a full second, scheduling
	// noise is negligible imbalance and the degree must stay at 4.
	b := NewAdaptive(p, 2, 1.0)
	checkBarrier(t, b, p, 12)
	// With p = 8 the model's full-tree degrees are {2, 8}; under balanced
	// load it must stay narrow (2 or the initial 4), never go flat.
	if b.Degree() > 4 {
		t.Errorf("degree widened to %d under balanced load", b.Degree())
	}
}

func TestOptimalDegreeFacade(t *testing.T) {
	if d := OptimalDegree(64, 0, 0); d != 4 {
		t.Errorf("OptimalDegree(64, 0) = %d, want 4", d)
	}
	if d := OptimalDegree(64, 1.0, 20e-6); d != 64 {
		t.Errorf("OptimalDegree at huge σ = %d, want 64 (flat)", d)
	}
	if d := OptimalDegree(1, 0, 0); d != 2 {
		t.Errorf("OptimalDegree(1) = %d, want clamp to 2", d)
	}
	// Non-power-of-two participant counts round up for estimation but
	// clamp to p.
	if d := OptimalDegree(56, 1.0, 20e-6); d != 56 {
		t.Errorf("OptimalDegree(56, huge σ) = %d, want 56", d)
	}
	prev := 0
	for _, sigma := range []float64{0, 1e-4, 5e-4, 2e-3} {
		d := OptimalDegree(4096, sigma, 20e-6)
		if d < prev {
			t.Errorf("OptimalDegree not monotone in σ: %d after %d", d, prev)
		}
		prev = d
	}
}

func TestEstimateSyncDelayFacade(t *testing.T) {
	d, err := EstimateSyncDelay(64, 4, 0, 20e-6)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 4 * 20e-6; d < want*(1-1e-9) || d > want*(1+1e-9) {
		t.Errorf("EstimateSyncDelay = %v, want %v", d, want)
	}
	if _, err := EstimateSyncDelay(56, 4, 0, 0); err == nil {
		t.Error("non-full tree should error")
	}
}

func TestExpectedLastArrivalFacade(t *testing.T) {
	if v := ExpectedLastArrival(4096, 1); v < 3 || v > 4 {
		t.Errorf("ExpectedLastArrival(4096, 1) = %v, want ≈3.5", v)
	}
	if v := ExpectedLastArrival(64, 0); v != 0 {
		t.Errorf("zero σ should give 0, got %v", v)
	}
}

func TestBarriersDriveSORCorrectly(t *testing.T) {
	// End-to-end: every barrier implementation must produce the exact
	// sequential SOR result when used to synchronize the parallel solver.
	mk := func() *sor.Grid {
		g := sor.NewGrid(20, 11)
		g.Fill(func(x, y int) float64 { return float64((x*13 + y*7) % 5) })
		return g
	}
	ref := mk()
	refBuf := ref.SolveSeq(15)
	const p = 6
	for name, b := range barriersUnderTest(p) {
		g := mk()
		buf := g.SolvePar(p, 15, b)
		if buf != refBuf {
			t.Fatalf("%s: wrong final buffer", name)
		}
		if g.Checksum(buf) != ref.Checksum(refBuf) {
			t.Fatalf("%s: SOR result differs from sequential", name)
		}
	}
}
