package softbarrier

import (
	"sync"
	"testing"
)

// recordingObserver captures every emitted EpisodeStats. The mutex is
// defensive: emission points are totally ordered by the barrier itself,
// but the observer contract does not promise callers run on one goroutine.
type recordingObserver struct {
	mu     sync.Mutex
	events []EpisodeStats
}

func (r *recordingObserver) Episode(st EpisodeStats) {
	r.mu.Lock()
	r.events = append(r.events, st)
	r.mu.Unlock()
}

func (r *recordingObserver) snapshot() []EpisodeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]EpisodeStats(nil), r.events...)
}

// TestObserverEpisodeStats drives each of the seven barriers through a
// fixed number of episodes and checks the shared telemetry contract: the
// observer fires exactly once per episode, with 0-based monotonically
// increasing episode indices, the right participant count, and coherent
// timing (last ≥ first arrival, sync delay ≥ 0).
func TestObserverEpisodeStats(t *testing.T) {
	const (
		p        = 5
		episodes = 40
	)
	for name, mk := range map[string]func(Observer) Barrier{
		"central":       func(o Observer) Barrier { return NewCentral(p, WithObserver(o)) },
		"tree-d4":       func(o Observer) Barrier { return NewCombiningTree(p, 4, WithObserver(o)) },
		"mcs-d4":        func(o Observer) Barrier { return NewMCSTree(p, 4, WithObserver(o)) },
		"dynamic-d4":    func(o Observer) Barrier { return NewDynamic(p, 4, WithObserver(o)) },
		"adaptive":      func(o Observer) Barrier { return NewAdaptive(p, 64, 0, WithObserver(o)) },
		"dissemination": func(o Observer) Barrier { return NewDissemination(p, WithObserver(o)) },
		"tournament":    func(o Observer) Barrier { return NewTournament(p, WithObserver(o)) },
	} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			obs := &recordingObserver{}
			bar := mk(obs)
			var wg sync.WaitGroup
			wg.Add(p)
			for id := 0; id < p; id++ {
				go func(id int) {
					defer wg.Done()
					for e := 0; e < episodes; e++ {
						bar.Wait(id)
					}
				}(id)
			}
			wg.Wait()

			events := obs.snapshot()
			if len(events) != episodes {
				t.Fatalf("observer fired %d times, want exactly %d", len(events), episodes)
			}
			for i, st := range events {
				if st.Episode != uint64(i) {
					t.Errorf("event %d: episode index %d, want %d (monotone from 0)", i, st.Episode, i)
				}
				if st.P != p {
					t.Errorf("event %d: P = %d, want %d", i, st.P, p)
				}
				if st.LastArrival < st.FirstArrival {
					t.Errorf("event %d: last arrival %d before first arrival %d", i, st.LastArrival, st.FirstArrival)
				}
				if st.SyncDelay < 0 {
					t.Errorf("event %d: negative sync delay %g", i, st.SyncDelay)
				}
				if st.Spread < 0 {
					t.Errorf("event %d: negative spread %g", i, st.Spread)
				}
			}
		})
	}
}

// TestObserverSeesSwapsAndAdaptations checks the barrier-specific Extra
// fields flow through: dynamic reports cumulative swaps, adaptive reports
// its adaptation count and current degree.
func TestObserverSeesSwapsAndAdaptations(t *testing.T) {
	const p, episodes = 4, 8
	run := func(bar Barrier, obs *recordingObserver) []EpisodeStats {
		var wg sync.WaitGroup
		wg.Add(p)
		for id := 0; id < p; id++ {
			go func(id int) {
				defer wg.Done()
				for e := 0; e < episodes; e++ {
					bar.Wait(id)
				}
			}(id)
		}
		wg.Wait()
		return obs.snapshot()
	}

	dynObs := &recordingObserver{}
	dyn := NewDynamic(p, 2, WithObserver(dynObs))
	events := run(dyn, dynObs)
	if len(events) != episodes {
		t.Fatalf("dynamic: %d events, want %d", len(events), episodes)
	}
	if got, want := events[len(events)-1].Swaps, dyn.Swaps(); got != want {
		t.Errorf("dynamic: final event reports %d swaps, barrier reports %d", got, want)
	}

	adObs := &recordingObserver{}
	ad := NewAdaptive(p, 64, 0, WithObserver(adObs))
	events = run(ad, adObs)
	if len(events) != episodes {
		t.Fatalf("adaptive: %d events, want %d", len(events), episodes)
	}
	last := events[len(events)-1]
	if last.Degree != ad.Degree() {
		t.Errorf("adaptive: final event degree %d, barrier degree %d", last.Degree, ad.Degree())
	}
	if last.Adaptations != ad.Adaptations() {
		t.Errorf("adaptive: final event adaptations %d, barrier reports %d", last.Adaptations, ad.Adaptations())
	}
}

// TestAggregateObserver folds episodes through the Aggregate observer and
// checks the summary arithmetic and the SigmaSource implementation.
func TestAggregateObserver(t *testing.T) {
	const p, episodes = 6, 25
	agg := NewAggregate()
	bar := NewCombiningTree(p, 4, WithObserver(agg))
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				bar.Wait(id)
			}
		}(id)
	}
	wg.Wait()

	s := agg.Summary()
	if s.Episodes != episodes {
		t.Fatalf("aggregate saw %d episodes, want %d", s.Episodes, episodes)
	}
	if s.P != p {
		t.Errorf("aggregate P = %d, want %d", s.P, p)
	}
	if s.MeanSyncDelay < 0 || s.MaxSyncDelay < s.MeanSyncDelay {
		t.Errorf("incoherent sync delays: mean %g, max %g", s.MeanSyncDelay, s.MaxSyncDelay)
	}
	sigma, n := agg.MeasuredSigma()
	if n != episodes {
		t.Errorf("MeasuredSigma episodes = %d, want %d", n, episodes)
	}
	if sigma < 0 {
		t.Errorf("negative measured sigma %g", sigma)
	}
}

// TestRecommendMeasured checks the planner consumes a live σ estimate:
// with a seeded source the profile's assumed Sigma is replaced, and with
// an empty source it is kept.
func TestRecommendMeasured(t *testing.T) {
	pr := Profile{P: 64, Sigma: 0, Tc: 20e-6}

	// Unseeded source: the assumed profile stands.
	empty := &fakeSigma{}
	if got, want := RecommendMeasured(pr, empty).Degree, Recommend(pr).Degree; got != want {
		t.Errorf("unseeded source changed the recommendation: got degree %d, want %d", got, want)
	}
	if RecommendMeasured(pr, nil).Degree != Recommend(pr).Degree {
		t.Error("nil source changed the recommendation")
	}

	// A large measured spread must drive the degree away from the σ=0
	// optimum, matching a direct Recommend over the measured profile.
	src := &fakeSigma{sigma: 2e-3, episodes: 100}
	measured := pr.Measured(src)
	if measured.Sigma != src.sigma {
		t.Fatalf("Measured kept Sigma %g, want %g", measured.Sigma, src.sigma)
	}
	got := RecommendMeasured(pr, src)
	want := Recommend(measured)
	if got.Degree != want.Degree {
		t.Errorf("RecommendMeasured degree %d, want %d", got.Degree, want.Degree)
	}
	if got.Degree == Recommend(pr).Degree {
		t.Errorf("measured σ=%g did not move the degree off the σ=0 optimum %d", src.sigma, got.Degree)
	}
}

type fakeSigma struct {
	sigma    float64
	episodes uint64
}

func (f *fakeSigma) MeasuredSigma() (float64, uint64) { return f.sigma, f.episodes }

// TestAdaptiveIsSigmaSource pins the feedback loop end-to-end: an adaptive
// barrier's live estimate flows into the planner via the SigmaSource
// interface.
func TestAdaptiveIsSigmaSource(t *testing.T) {
	const p = 4
	ad := NewAdaptive(p, 64, 0)
	var src SigmaSource = ad
	if _, n := src.MeasuredSigma(); n != 0 {
		t.Fatalf("fresh adaptive barrier reports %d episodes", n)
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for e := 0; e < 10; e++ {
				ad.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	if _, n := src.MeasuredSigma(); n != 10 {
		t.Fatalf("adaptive barrier reports %d episodes, want 10", n)
	}
	// The measured profile must be buildable.
	rec := RecommendMeasured(Profile{P: p, Tc: 20e-6}, src)
	if rec.Degree < 2 {
		t.Errorf("measured recommendation degree %d < 2", rec.Degree)
	}
}

// TestCentralWaitNoObserverAllocs pins the nil-observer fast path: a Wait
// episode with no observer installed performs zero heap allocations.
func TestCentralWaitNoObserverAllocs(t *testing.T) {
	bar := NewCentral(1)
	if n := testing.AllocsPerRun(100, func() { bar.Wait(0) }); n != 0 {
		t.Fatalf("central Wait with no observer allocates %v per episode, want 0", n)
	}
}
