package softbarrier

import (
	"context"
	"sync"
	"sync/atomic"

	rt "softbarrier/internal/runtime"
	"softbarrier/internal/topology"
)

// DynamicBarrier is the paper's dynamic-placement barrier (§5.1, Fig. 7):
// an MCS-style combining tree in which a participant that completes a
// counter above its own — meaning it arrived last in that counter's whole
// subtree — swaps into that counter's local slot as it climbs, displacing
// the slot's previous occupant (the victim) into the position the victor
// just vacated. Under systemic load imbalance, or fuzzy barriers with
// enough slack, the consistently slow participant migrates to the root
// and synchronizes in O(1) counter updates instead of O(log p).
//
// The swap protocol follows the paper's two-phase scheme: the victor
// writes its id into the counter's Local entry and its previous first
// counter into the Destination entry; at its next episode the victim
// notices it was displaced, reads Destination (the one extra
// communication, paid by the faster processor) and adopts it. Swap writes
// happen during the ascent, before the victor updates the parent counter,
// so they are always ordered before the episode's release.
//
// Release and telemetry run on the shared internal/runtime core; an
// installed Observer additionally sees the cumulative swap count per
// episode.
type DynamicBarrier struct {
	p        int
	tree     *topology.Tree
	counters []dynCounter
	first    []rt.PaddedUint64 // per-participant first counter (owner-written)
	ringOf   []int

	gate  rt.Gate
	myGen []rt.PaddedUint64

	swaps atomic.Uint64
	rec   *rt.Recorder
	red   *rt.Reducer // payload reducer; nil without WithCollective
	poisonCore
}

// dynCounter is a tree node's counter plus the dynamic-placement fields.
type dynCounter struct {
	mu    sync.Mutex
	count int
	fanIn int
	// local is the participant occupying the counter's local slot, or
	// topology.NoProc (the ring merge root accepts no migrants). For
	// internal counters it always names the participant whose first
	// counter this is.
	local int
	// evicted/destination implement the victim hand-off: evicted names the
	// displaced participant (one-shot, cleared on consumption) and
	// destination its new first counter.
	evicted     int
	destination int
	ring        int
	parent      int
	internal    bool
	_           [8]byte
}

// NewDynamic returns a dynamic-placement barrier for p participants over
// an MCS-style tree of the given degree.
func NewDynamic(p, degree int, opts ...Option) *DynamicBarrier {
	return NewDynamicFromTree(topology.NewMCS(p, degree), opts...)
}

// NewDynamicRing returns a dynamic-placement barrier whose tree is
// ring-constrained (one subtree per ring merged by an extra root), as used
// on the KSR1: swaps never cross ring boundaries.
func NewDynamicRing(ringSizes []int, degree int, opts ...Option) *DynamicBarrier {
	return NewDynamicFromTree(topology.NewRing(ringSizes, degree), opts...)
}

// NewDynamicFromTree builds the barrier over an explicit topology. Use
// topology.NewMCS or topology.NewRing; classic trees have no local slots
// and would never migrate anyone.
func NewDynamicFromTree(tree *topology.Tree, opts ...Option) *DynamicBarrier {
	o := applyOptions(opts)
	tree = placeTree(tree, o.placeOrder)
	b := &DynamicBarrier{
		p:        tree.P,
		tree:     tree,
		counters: make([]dynCounter, len(tree.Counters)),
		first:    make([]rt.PaddedUint64, tree.P),
		ringOf:   make([]int, tree.P),
		myGen:    make([]rt.PaddedUint64, tree.P),
	}
	for i := range b.counters {
		c := &tree.Counters[i]
		b.counters[i] = dynCounter{
			fanIn:       c.FanIn(),
			local:       c.Local,
			evicted:     topology.NoProc,
			destination: topology.NoCounter,
			ring:        c.RingID,
			parent:      c.Parent,
			internal:    len(c.Children) > 0,
		}
	}
	for id := 0; id < tree.P; id++ {
		b.first[id].V = uint64(tree.FirstCounter(id))
		b.ringOf[id] = tree.RingOf(id)
	}
	b.gate.Init(o.policy)
	b.rec = o.recorder(tree.P, false)
	b.red = o.reducer(tree.P, len(tree.Counters))
	b.initPoison(tree.P, o.watchdog, o.poisonNotify,
		func() { b.gate.Poison() },
		func() {
			// Drop the aborted episode's partial counts. The placement
			// state (local slots, pending evictions) survives: it is a
			// consistent placement at every ascent boundary, and pending
			// victims adopt their destination on their next arrival.
			for i := range b.counters {
				c := &b.counters[i]
				c.mu.Lock()
				c.count = 0
				c.mu.Unlock()
			}
			if b.red != nil {
				b.red.Reset()
			}
			b.gate.Unpoison()
		})
	return b
}

// Participants returns P.
func (b *DynamicBarrier) Participants() int { return b.p }

// Degree returns the tree's construction degree.
func (b *DynamicBarrier) Degree() int { return b.tree.Degree }

// Swaps returns the total number of placement swaps performed so far.
func (b *DynamicBarrier) Swaps() uint64 { return b.swaps.Load() }

// FirstCounterOf returns participant id's current first counter. It is
// meaningful only at a quiescent point (no Wait/Arrive in flight); the
// slot is owner-written without cross-goroutine synchronization.
func (b *DynamicBarrier) FirstCounterOf(id int) int {
	checkID(id, b.p)
	return int(b.first[id].V)
}

// DepthOf returns the number of counters participant id currently updates
// per episode (its synchronization path length). Like FirstCounterOf it
// must be called at a quiescent point. A pending eviction the participant
// has not consumed yet is resolved as the victim itself would resolve it.
func (b *DynamicBarrier) DepthOf(id int) int {
	c := b.FirstCounterOf(id)
	if dc := &b.counters[c]; dc.evicted == id {
		c = dc.destination
	}
	n := 0
	for c != topology.NoCounter {
		n++
		c = b.counters[c].parent
	}
	return n
}

// LagsInto reads the given episode's per-participant arrival lags into
// dst — see TreeBarrier.LagsInto. Releaser-only; nil without an observer.
func (b *DynamicBarrier) LagsInto(episode uint64, dst []float64) []float64 {
	return b.rec.LagsInto(episode, dst)
}

// Wait blocks until all participants arrive.
func (b *DynamicBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive performs the dynamic-placement ascent for participant id. On a
// poisoned barrier it is a no-op.
func (b *DynamicBarrier) Arrive(id int) {
	checkID(id, b.p)
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	gen := b.gate.Seq()
	b.rec.Arrive(id, gen)
	b.myGen[id].V = gen

	// Victim side (Fig. 6d): if we were displaced last episode, our stale
	// counter's Evicted entry names us; adopt the Destination and, when it
	// is an internal counter, take over its local slot.
	fc := int(b.first[id].V)
	cn := &b.counters[fc]
	cn.mu.Lock()
	if cn.evicted == id {
		cn.evicted = topology.NoProc
		dest := cn.destination
		cn.mu.Unlock()
		nc := &b.counters[dest]
		nc.mu.Lock()
		if nc.internal {
			nc.local = id
		}
		nc.mu.Unlock()
		fc = dest
		b.first[id].V = uint64(fc)
	} else {
		cn.mu.Unlock()
	}

	b.ascend(id, fc)
}

// ascend climbs from counter c, swapping into each completed counter above
// the participant's own (victor side, Fig. 6c), and releases the episode
// if the root completes.
func (b *DynamicBarrier) ascend(id, c int) {
	for c != topology.NoCounter {
		tc := &b.counters[c]
		tc.mu.Lock()
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		// id arrived last in c's whole subtree: position itself here
		// before touching the parent, so the swap is ordered before any
		// possible release.
		if fc := int(b.first[id].V); c != fc {
			tc.mu.Lock()
			if tc.local != topology.NoProc && tc.ring == b.ringOf[id] {
				tc.evicted = tc.local
				tc.destination = fc
				tc.local = id
				tc.mu.Unlock()
				b.first[id].V = uint64(c)
				b.swaps.Add(1)
			} else {
				tc.mu.Unlock()
			}
		}
		c = tc.parent
	}
	// Root completed: measure while the arrival slots are quiescent, then
	// release everyone.
	b.rec.Release(b.gate.Seq(), rt.Extra{Swaps: b.swaps.Load(), Degree: b.tree.Degree})
	b.gate.Open()
}

// AllReduce contributes in, completes one episode, and copies the
// reduction of all p contributions into out — TreeBarrier.AllReduce over
// the dynamic-placement ascent. Under systemic imbalance the placement
// migration is itself the σ-aware reduction policy: the consistently late
// participant ends up adjacent to the root, so its contribution folds
// last and the post-arrival critical path shrinks to O(1) folds.
func (b *DynamicBarrier) AllReduce(id int, in, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	gen, ok := b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	return b.finishColl(id, gen, ok, out)
}

// Reduce is AllReduce with the result delivered only to root.
func (b *DynamicBarrier) Reduce(id, root int, in, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	checkID(root, b.p)
	gen, ok := b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	if id != root {
		out = nil
	}
	return b.finishColl(id, gen, ok, out)
}

// Broadcast completes one episode delivering root's buf into every other
// participant's buf.
func (b *DynamicBarrier) Broadcast(id, root int, buf []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	checkID(root, b.p)
	gen, ok := b.arriveColl(id, buf, collBcast, root)
	if id == root {
		buf = nil
	}
	return b.finishColl(id, gen, ok, buf)
}

// ArriveReduce is the fuzzy half of AllReduce: contribute and ascend
// without waiting; collect with AwaitResult.
func (b *DynamicBarrier) ArriveReduce(id int, in []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	return nil
}

// AwaitResult blocks until ArriveReduce's episode completes and copies
// its reduction into out (nil discards it).
func (b *DynamicBarrier) AwaitResult(id int, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	checkID(id, b.p)
	return b.finishColl(id, b.myGen[id].V, true, out)
}

// Reduced returns the published reduction of the given episode — see
// TreeBarrier.Reduced.
func (b *DynamicBarrier) Reduced(episode uint64) []byte {
	if b.red == nil {
		return nil
	}
	return b.red.Result(episode)
}

// arriveColl is Arrive carrying a payload; see TreeBarrier.arriveColl.
func (b *DynamicBarrier) arriveColl(id int, in []byte, mode uint8, root int) (gen uint64, ok bool) {
	checkID(id, b.p)
	checkContribution(b.red, in)
	if b.poisoned() {
		return 0, false
	}
	b.noteArrive(id)
	gen = b.gate.Seq()
	b.rec.Arrive(id, gen)
	b.myGen[id].V = gen
	switch mode {
	case collCells:
		b.red.Deposit(gen, id, in)
	case collBcast:
		if id == root {
			b.red.Deposit(gen, id, in)
		}
	}

	// Victim adoption, as in Arrive.
	fc := int(b.first[id].V)
	cn := &b.counters[fc]
	cn.mu.Lock()
	if cn.evicted == id {
		cn.evicted = topology.NoProc
		dest := cn.destination
		cn.mu.Unlock()
		nc := &b.counters[dest]
		nc.mu.Lock()
		if nc.internal {
			nc.local = id
		}
		nc.mu.Unlock()
		fc = dest
		b.first[id].V = uint64(fc)
	} else {
		cn.mu.Unlock()
	}

	var carry []byte
	if mode == collGreedy {
		carry = in
	}
	b.ascendColl(id, fc, carry, mode, root, gen)
	return gen, true
}

// ascendColl is ascend with the payload fold threaded through the swap
// protocol: the fold shares each counter's critical section, and swaps
// proceed exactly as in the plain ascent — a greedy carry is attached to
// the ascending participant, not to a tree position, so migration cannot
// drop or double-fold a contribution.
func (b *DynamicBarrier) ascendColl(id, c int, carry []byte, mode uint8, root int, gen uint64) {
	for c != topology.NoCounter {
		tc := &b.counters[c]
		tc.mu.Lock()
		if mode == collGreedy {
			b.red.FoldNode(c, carry)
		}
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
			if mode == collGreedy {
				carry = b.red.TakeNode(c)
			}
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		if fc := int(b.first[id].V); c != fc {
			tc.mu.Lock()
			if tc.local != topology.NoProc && tc.ring == b.ringOf[id] {
				tc.evicted = tc.local
				tc.destination = fc
				tc.local = id
				tc.mu.Unlock()
				b.first[id].V = uint64(c)
				b.swaps.Add(1)
			} else {
				tc.mu.Unlock()
			}
		}
		c = tc.parent
	}
	switch mode {
	case collGreedy:
		b.red.PublishCarry(gen, carry)
	case collCells:
		b.red.FinishCells(gen, b.p)
	case collBcast:
		b.red.PublishCell(gen, root)
	}
	b.rec.Release(b.gate.Seq(), rt.Extra{Swaps: b.swaps.Load(), Degree: b.tree.Degree})
	b.gate.Open()
}

// finishColl awaits the episode and copies its result out; see
// TreeBarrier.finishColl.
func (b *DynamicBarrier) finishColl(id int, gen uint64, contributed bool, out []byte) error {
	b.Await(id)
	if err := b.Err(); err != nil {
		return err
	}
	if contributed && out != nil {
		b.red.CopyResult(gen, out)
	}
	return nil
}

// Await blocks participant id until the episode it arrived in completes
// or the barrier is poisoned.
func (b *DynamicBarrier) Await(id int) {
	checkID(id, b.p)
	b.gate.Await(b.myGen[id].V)
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *DynamicBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

// AwaitCtx is Await with cancellation, with WaitCtx's poison semantics.
func (b *DynamicBarrier) AwaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Await(id) })
}

var _ PhasedBarrier = (*DynamicBarrier)(nil)
var _ ContextBarrier = (*DynamicBarrier)(nil)
var _ Collective = (*DynamicBarrier)(nil)
