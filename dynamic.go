package softbarrier

import (
	"context"
	"sync"
	"sync/atomic"

	rt "softbarrier/internal/runtime"
	"softbarrier/internal/topology"
)

// DynamicBarrier is the paper's dynamic-placement barrier (§5.1, Fig. 7):
// an MCS-style combining tree in which a participant that completes a
// counter above its own — meaning it arrived last in that counter's whole
// subtree — swaps into that counter's local slot as it climbs, displacing
// the slot's previous occupant (the victim) into the position the victor
// just vacated. Under systemic load imbalance, or fuzzy barriers with
// enough slack, the consistently slow participant migrates to the root
// and synchronizes in O(1) counter updates instead of O(log p).
//
// The swap protocol follows the paper's two-phase scheme: the victor
// writes its id into the counter's Local entry and its previous first
// counter into the Destination entry; at its next episode the victim
// notices it was displaced, reads Destination (the one extra
// communication, paid by the faster processor) and adopts it. Swap writes
// happen during the ascent, before the victor updates the parent counter,
// so they are always ordered before the episode's release.
//
// Release and telemetry run on the shared internal/runtime core; an
// installed Observer additionally sees the cumulative swap count per
// episode.
type DynamicBarrier struct {
	p        int
	tree     *topology.Tree
	counters []dynCounter
	first    []rt.PaddedUint64 // per-participant first counter (owner-written)
	ringOf   []int

	gate  rt.Gate
	myGen []rt.PaddedUint64

	swaps atomic.Uint64
	rec   *rt.Recorder
	poisonCore
}

// dynCounter is a tree node's counter plus the dynamic-placement fields.
type dynCounter struct {
	mu    sync.Mutex
	count int
	fanIn int
	// local is the participant occupying the counter's local slot, or
	// topology.NoProc (the ring merge root accepts no migrants). For
	// internal counters it always names the participant whose first
	// counter this is.
	local int
	// evicted/destination implement the victim hand-off: evicted names the
	// displaced participant (one-shot, cleared on consumption) and
	// destination its new first counter.
	evicted     int
	destination int
	ring        int
	parent      int
	internal    bool
	_           [8]byte
}

// NewDynamic returns a dynamic-placement barrier for p participants over
// an MCS-style tree of the given degree.
func NewDynamic(p, degree int, opts ...Option) *DynamicBarrier {
	return NewDynamicFromTree(topology.NewMCS(p, degree), opts...)
}

// NewDynamicRing returns a dynamic-placement barrier whose tree is
// ring-constrained (one subtree per ring merged by an extra root), as used
// on the KSR1: swaps never cross ring boundaries.
func NewDynamicRing(ringSizes []int, degree int, opts ...Option) *DynamicBarrier {
	return NewDynamicFromTree(topology.NewRing(ringSizes, degree), opts...)
}

// NewDynamicFromTree builds the barrier over an explicit topology. Use
// topology.NewMCS or topology.NewRing; classic trees have no local slots
// and would never migrate anyone.
func NewDynamicFromTree(tree *topology.Tree, opts ...Option) *DynamicBarrier {
	o := applyOptions(opts)
	b := &DynamicBarrier{
		p:        tree.P,
		tree:     tree,
		counters: make([]dynCounter, len(tree.Counters)),
		first:    make([]rt.PaddedUint64, tree.P),
		ringOf:   make([]int, tree.P),
		myGen:    make([]rt.PaddedUint64, tree.P),
	}
	for i := range b.counters {
		c := &tree.Counters[i]
		b.counters[i] = dynCounter{
			fanIn:       c.FanIn(),
			local:       c.Local,
			evicted:     topology.NoProc,
			destination: topology.NoCounter,
			ring:        c.RingID,
			parent:      c.Parent,
			internal:    len(c.Children) > 0,
		}
	}
	for id := 0; id < tree.P; id++ {
		b.first[id].V = uint64(tree.FirstCounter(id))
		b.ringOf[id] = tree.RingOf(id)
	}
	b.gate.Init(o.policy)
	b.rec = o.recorder(tree.P, false)
	b.initPoison(tree.P, o.watchdog, o.poisonNotify,
		func() { b.gate.Poison() },
		func() {
			// Drop the aborted episode's partial counts. The placement
			// state (local slots, pending evictions) survives: it is a
			// consistent placement at every ascent boundary, and pending
			// victims adopt their destination on their next arrival.
			for i := range b.counters {
				c := &b.counters[i]
				c.mu.Lock()
				c.count = 0
				c.mu.Unlock()
			}
			b.gate.Unpoison()
		})
	return b
}

// Participants returns P.
func (b *DynamicBarrier) Participants() int { return b.p }

// Degree returns the tree's construction degree.
func (b *DynamicBarrier) Degree() int { return b.tree.Degree }

// Swaps returns the total number of placement swaps performed so far.
func (b *DynamicBarrier) Swaps() uint64 { return b.swaps.Load() }

// FirstCounterOf returns participant id's current first counter. It is
// meaningful only at a quiescent point (no Wait/Arrive in flight); the
// slot is owner-written without cross-goroutine synchronization.
func (b *DynamicBarrier) FirstCounterOf(id int) int {
	checkID(id, b.p)
	return int(b.first[id].V)
}

// DepthOf returns the number of counters participant id currently updates
// per episode (its synchronization path length). Like FirstCounterOf it
// must be called at a quiescent point. A pending eviction the participant
// has not consumed yet is resolved as the victim itself would resolve it.
func (b *DynamicBarrier) DepthOf(id int) int {
	c := b.FirstCounterOf(id)
	if dc := &b.counters[c]; dc.evicted == id {
		c = dc.destination
	}
	n := 0
	for c != topology.NoCounter {
		n++
		c = b.counters[c].parent
	}
	return n
}

// Wait blocks until all participants arrive.
func (b *DynamicBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive performs the dynamic-placement ascent for participant id. On a
// poisoned barrier it is a no-op.
func (b *DynamicBarrier) Arrive(id int) {
	checkID(id, b.p)
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	gen := b.gate.Seq()
	b.rec.Arrive(id, gen)
	b.myGen[id].V = gen

	// Victim side (Fig. 6d): if we were displaced last episode, our stale
	// counter's Evicted entry names us; adopt the Destination and, when it
	// is an internal counter, take over its local slot.
	fc := int(b.first[id].V)
	cn := &b.counters[fc]
	cn.mu.Lock()
	if cn.evicted == id {
		cn.evicted = topology.NoProc
		dest := cn.destination
		cn.mu.Unlock()
		nc := &b.counters[dest]
		nc.mu.Lock()
		if nc.internal {
			nc.local = id
		}
		nc.mu.Unlock()
		fc = dest
		b.first[id].V = uint64(fc)
	} else {
		cn.mu.Unlock()
	}

	b.ascend(id, fc)
}

// ascend climbs from counter c, swapping into each completed counter above
// the participant's own (victor side, Fig. 6c), and releases the episode
// if the root completes.
func (b *DynamicBarrier) ascend(id, c int) {
	for c != topology.NoCounter {
		tc := &b.counters[c]
		tc.mu.Lock()
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		// id arrived last in c's whole subtree: position itself here
		// before touching the parent, so the swap is ordered before any
		// possible release.
		if fc := int(b.first[id].V); c != fc {
			tc.mu.Lock()
			if tc.local != topology.NoProc && tc.ring == b.ringOf[id] {
				tc.evicted = tc.local
				tc.destination = fc
				tc.local = id
				tc.mu.Unlock()
				b.first[id].V = uint64(c)
				b.swaps.Add(1)
			} else {
				tc.mu.Unlock()
			}
		}
		c = tc.parent
	}
	// Root completed: measure while the arrival slots are quiescent, then
	// release everyone.
	b.rec.Release(b.gate.Seq(), rt.Extra{Swaps: b.swaps.Load(), Degree: b.tree.Degree})
	b.gate.Open()
}

// Await blocks participant id until the episode it arrived in completes
// or the barrier is poisoned.
func (b *DynamicBarrier) Await(id int) {
	checkID(id, b.p)
	b.gate.Await(b.myGen[id].V)
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *DynamicBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

// AwaitCtx is Await with cancellation, with WaitCtx's poison semantics.
func (b *DynamicBarrier) AwaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Await(id) })
}

var _ PhasedBarrier = (*DynamicBarrier)(nil)
var _ ContextBarrier = (*DynamicBarrier)(nil)
