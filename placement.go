package softbarrier

import (
	"softbarrier/internal/loadmodel"
	"softbarrier/internal/topology"
)

// PlacementPolicy consumes per-participant arrival-lag history — one
// Observe per episode, lags in seconds behind the episode's earliest
// arrival — and emits the order in which participants should occupy the
// combining tree's slots, laggiest-predicted-first: rank k lands on the
// k-th shallowest slot, so a predicted straggler's late arrival climbs
// one or two counters instead of a full leaf-to-root path. Order may
// return nil, meaning "no (new) opinion; keep the current placement".
//
// Policies live in internal/loadmodel (reactive last-arrival, EWMA,
// history-window trend, hysteresis-damped variants) and are constructed
// here by name via PlacementByName. A policy instance is stateful and
// single-owner: barriers call it only from the releasing participant at
// the episode's quiescent point.
type PlacementPolicy = loadmodel.PlacementPolicy

// PlacementByName returns a constructor for the named placement policy —
// one of PlacementNames: "static", "reactive", "ewma", "trend",
// "ewma-hys". Policies are code and cannot travel the wire, so networked
// deployments select them by these stable names (barrierd -placement).
func PlacementByName(name string) (func() PlacementPolicy, bool) {
	return loadmodel.PolicyByName(name)
}

// PlacementNames lists the registered placement-policy names.
func PlacementNames() []string { return loadmodel.PolicyNames() }

// WithPlacementPolicy arms predictive straggler placement on barriers
// that can rebuild their tree: every episode the releasing participant
// feeds the measured per-participant lags to pol, and at the replan
// cadence a changed Order triggers a placement-only rebuild that puts
// predicted stragglers in the shallowest slots (ReconfigStats.Placements
// counts these). On ReconfigurableBarrier the epoch trees are built
// MCS-style when a policy is armed: classic trees put every participant
// at the same depth, so there would be nothing for placement to choose.
// Wrap noisy policies in loadmodel.Hysteresis (or use "ewma-hys") to keep
// σ-level rank jitter from rebuilding the tree every cadence. Barriers
// that never rebuild (central, sense-reversing, …) ignore the option.
func WithPlacementPolicy(pol PlacementPolicy) Option {
	return func(o *options) { o.placement = pol }
}

// WithPlacement fixes a static placement order for tree construction:
// order[k] is the participant id assigned to the k-th shallowest slot
// (ties broken by counter id, then slot index — topology.PlaceByDepth).
// It is the offline counterpart of WithPlacementPolicy for callers that
// already hold a lag profile: NewMCSTree(p, d, WithPlacement(
// ReduceOrder(lags))). The constructor panics if order is not a
// permutation of the participants or the topology refuses relabelling
// (ring-constrained trees). Barriers without a fixed tree ignore it.
func WithPlacement(order []int) Option {
	return func(o *options) { o.placeOrder = order }
}

// placeTree applies a static placement order to a freshly built tree,
// panicking on an invalid order — a construction-time programming error,
// like an invalid degree.
func placeTree(tree *topology.Tree, order []int) *topology.Tree {
	if order == nil {
		return tree
	}
	placed, err := tree.PlaceByDepth(order)
	if err != nil {
		panic("softbarrier: " + err.Error())
	}
	return placed
}

// policyOrder asks pol for a placement order for p participants. It
// returns nil — keep the current placement — when the policy has no
// opinion or its opinion is for a different membership (stale history
// straddling a resize).
func policyOrder(pol PlacementPolicy, p int) []int {
	if pol == nil {
		return nil
	}
	order := pol.Order()
	if len(order) != p {
		return nil
	}
	return order
}

// sameOrder reports whether two placement orders are equal, treating nil
// as the identity order (the natural placement a nil-order tree has).
func sameOrder(a, b []int, p int) bool {
	if a == nil && b == nil {
		return true
	}
	idx := func(o []int, k int) int {
		if o == nil {
			return k
		}
		return o[k]
	}
	for k := 0; k < p; k++ {
		if idx(a, k) != idx(b, k) {
			return false
		}
	}
	return true
}
