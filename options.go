package softbarrier

import (
	"time"

	rt "softbarrier/internal/runtime"
)

// WaitPolicy bounds the phases every barrier's waiter goes through before
// it parks: Spin busy-poll iterations on the watched atomic, then Yield
// iterations interleaved with runtime.Gosched(), then a park on a blocking
// primitive until the releaser wakes it. The zero policy parks
// immediately; DefaultWaitPolicy is the tuned hybrid every constructor
// starts from.
type WaitPolicy struct {
	// Spin is the number of busy-poll iterations before yielding.
	Spin int
	// Yield is the number of poll+Gosched iterations before parking.
	Yield int
}

// DefaultWaitPolicy returns the policy barriers use unless overridden with
// WithWaitPolicy.
func DefaultWaitPolicy() WaitPolicy {
	p := rt.DefaultWaitPolicy()
	return WaitPolicy{Spin: p.Spin, Yield: p.Yield}
}

// Option configures a barrier at construction. Every constructor in this
// package accepts options; an option that does not apply to a particular
// barrier (WithTreeWakeup on a non-tree barrier) is ignored.
type Option func(*options)

// options is the merged configuration shared by all constructors.
type options struct {
	observer     Observer
	policy       rt.WaitPolicy
	clock        func() int64
	treeWakeup   bool
	watchdog     time.Duration
	poisonNotify func(error)
	collective   *rt.Op
	placement    PlacementPolicy
	placeOrder   []int
}

func applyOptions(opts []Option) options {
	o := options{policy: rt.DefaultWaitPolicy()}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// recorder builds the barrier's episode recorder; always forces recording
// even without an observer (the adaptive barrier's control loop needs the
// measurements). The result is nil — the allocation-free disabled path —
// when neither applies.
func (o options) recorder(p int, always bool) *rt.Recorder {
	return rt.New(p, o.observer, o.clock, always)
}

// WithObserver installs obs to receive one EpisodeStats per completed
// episode: episode index, first/last arrival, measured spread σ, sync
// delay, and the barrier's swap/adaptation counters. Without this option
// the telemetry path is disabled entirely and costs nothing per episode.
func WithObserver(obs Observer) Option {
	return func(o *options) { o.observer = obs }
}

// WithWaitPolicy overrides the waiter's spin→yield→park budgets. Negative
// values are treated as zero. WaitPolicy{} parks immediately (lowest CPU
// burn); large budgets approximate the old pure-spin behaviour.
func WithWaitPolicy(p WaitPolicy) Option {
	if p.Spin < 0 {
		p.Spin = 0
	}
	if p.Yield < 0 {
		p.Yield = 0
	}
	return func(o *options) { o.policy = rt.WaitPolicy{Spin: p.Spin, Yield: p.Yield} }
}

// WithWatchdog arms a stall detector on the barrier: a background
// goroutine watches per-participant arrival counters and, once an episode
// has made no progress for at least d while some participants have
// arrived and others have not, poisons the barrier with a *StallError
// naming the absent participant ids. An idle barrier (no episode open) is
// never poisoned, so d bounds the tolerated arrival spread, not the step
// length between episodes. Call Close when the barrier is done with to
// release the goroutine; d <= 0 disables the watchdog.
func WithWatchdog(d time.Duration) Option {
	return func(o *options) { o.watchdog = d }
}

// WithPoisonNotify installs fn to be called exactly once when the barrier
// is poisoned — by Poison, a context cancellation, or the WithWatchdog
// stall detector — with the cause as its argument. The hook runs on the
// poisoning goroutine after local waiters have been woken, so it may block
// (a networked coordinator uses it to broadcast the wire-encoded cause to
// remote waiters) without delaying the local release. After Reset, the
// next poisoning notifies again.
func WithPoisonNotify(fn func(error)) Option {
	return func(o *options) { o.poisonNotify = fn }
}

// WithTreeWakeup selects tree-propagated wakeup on TreeBarrier: released
// participants wake their two heap children instead of everyone parking on
// one broadcast gate. This bounds the contention of the release path at
// the cost of log₂ p propagation hops. Other barriers ignore it.
func WithTreeWakeup() Option {
	return func(o *options) { o.treeWakeup = true }
}

// WithCollective arms the barrier's payload path: episodes may then carry
// op.Width-byte contributions through AllReduce / Reduce / Broadcast (see
// Collective), folded by op. The plain Wait path is untouched — a barrier
// built with this option and driven only through Wait runs the same
// zero-payload fast path as one built without it. The option panics at
// construction on an invalid op (zero width, nil fold, mis-sized
// identity); barriers that do not implement Collective ignore it.
func WithCollective(op Op) Option {
	return func(o *options) { o.collective = &op }
}

// reducer builds the barrier's payload reducer for p participants over
// nodes counters, or nil when WithCollective was not given.
func (o options) reducer(p, nodes int) *rt.Reducer {
	if o.collective == nil {
		return nil
	}
	return rt.NewReducer(*o.collective, p, nodes)
}

// withClock overrides the telemetry clock (tests only).
func withClock(clock func() int64) Option {
	return func(o *options) { o.clock = clock }
}

// TreeOption is the former tree-only option type.
//
// Deprecated: all constructors now share Option; TreeOption remains as an
// alias for source compatibility.
type TreeOption = Option
