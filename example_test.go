package softbarrier_test

import (
	"fmt"
	"sync"
	"time"

	"softbarrier"
)

// The most common usage: a fixed pool of workers running supersteps
// separated by a combining-tree barrier.
func ExampleNewCombiningTree() {
	const workers = 4
	b := softbarrier.NewCombiningTree(workers, 4)

	var wg sync.WaitGroup
	wg.Add(workers)
	for id := 0; id < workers; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < 3; step++ {
				// ... work for this superstep ...
				b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	fmt.Println("3 supersteps completed")
	// Output: 3 supersteps completed
}

// OptimalDegree applies the paper's analytic model: under simultaneous
// arrival (σ = 0) the classic answer is degree 4; once arrivals spread far
// beyond the counter update time, a flat tree wins.
func ExampleOptimalDegree() {
	tc := 20e-6 // 20µs counter updates, the paper's measured value
	fmt.Println(softbarrier.OptimalDegree(64, 0, tc))
	fmt.Println(softbarrier.OptimalDegree(64, 100*tc, tc))
	// Output:
	// 4
	// 64
}

// A fuzzy barrier: independent work placed between Arrive and Await runs
// in the barrier's slack, hiding load imbalance.
func ExamplePhasedBarrier() {
	const workers = 3
	var b softbarrier.PhasedBarrier = softbarrier.NewMCSTree(workers, 2)

	var wg sync.WaitGroup
	wg.Add(workers)
	for id := 0; id < workers; id++ {
		go func(id int) {
			defer wg.Done()
			// ... work that others depend on ...
			b.Arrive(id)
			// ... independent work, overlapped with stragglers ...
			b.Await(id)
			// ... work that depends on everyone's arrival ...
		}(id)
	}
	wg.Wait()
	fmt.Println("fuzzy episode completed")
	// Output: fuzzy episode completed
}

// Dynamic placement: a consistently slow worker migrates toward the root
// and ends up synchronizing through a single counter.
func ExampleDynamicBarrier() {
	const workers, slow = 8, 2
	b := softbarrier.NewDynamic(workers, 2)

	for episode := 0; episode < 10; episode++ {
		var wg sync.WaitGroup
		wg.Add(workers)
		for id := 0; id < workers; id++ {
			go func(id int) {
				defer wg.Done()
				if id == slow {
					time.Sleep(time.Millisecond) // systemic imbalance
				}
				b.Wait(id)
			}(id)
		}
		wg.Wait()
	}
	fmt.Println("slow worker depth:", b.DepthOf(slow))
	// Output: slow worker depth: 1
}

// EstimateSyncDelay evaluates the paper's Algorithm 1: for simultaneous
// arrival it reduces to the closed form L·d·t_c.
func ExampleEstimateSyncDelay() {
	delay, err := softbarrier.EstimateSyncDelay(64, 4, 0, 20e-6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0fµs\n", delay*1e6)
	// Output: 240µs
}

// Group removes the BSP boilerplate: one call runs all workers and
// supersteps over any barrier.
func ExampleGroup_Run() {
	g := softbarrier.NewGroup(softbarrier.NewCombiningTree(4, 2))
	var sum [3]int32
	var mu sync.Mutex
	g.Run(3, func(id, step int) {
		mu.Lock()
		sum[step]++
		mu.Unlock()
	})
	fmt.Println(sum[0], sum[1], sum[2])
	// Output: 4 4 4
}

// Recommend turns a workload profile into a barrier configuration using
// the paper's decision procedure.
func ExampleRecommend() {
	rec := softbarrier.Recommend(softbarrier.Profile{
		P:        64,
		Sigma:    500e-6, // arrivals spread over ~0.5ms
		Tc:       20e-6,  // counter updates cost 20µs
		Slack:    2e-3,   // the program exposes 2ms of fuzzy slack
		Systemic: false,
	})
	fmt.Println("degree:", rec.Degree)
	fmt.Println("dynamic placement:", rec.Dynamic)
	fmt.Println("fuzzy:", rec.Fuzzy)
	// Output:
	// degree: 8
	// dynamic placement: true
	// fuzzy: true
}

// The dissemination barrier needs no tuning and no central state: a
// drop-in baseline.
func ExampleDisseminationBarrier() {
	b := softbarrier.NewDissemination(5)
	var wg sync.WaitGroup
	wg.Add(5)
	for id := 0; id < 5; id++ {
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	fmt.Println("rounds per episode:", b.Rounds())
	// Output: rounds per episode: 3
}
