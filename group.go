package softbarrier

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Group runs bulk-synchronous supersteps: a fixed pool of workers executes
// a step function, with a barrier between consecutive steps so that no
// worker starts step k+1 before every worker finished step k. It is the
// BSP-loop boilerplate every barrier user otherwise rewrites.
//
// A panicking step function does not strand the other workers: the panic
// is recovered, the group's barrier is poisoned so every parked sibling
// wakes immediately, all workers stop at the panicking step's boundary,
// and the panic is re-raised to the caller once the pool has drained (the
// earliest failing step's lowest-numbered worker wins, mirroring RunErr).
// Failures the group injected itself are healed after the drain — the
// barrier is Reset, so the group stays reusable. A poison arriving from
// outside (a watchdog, a direct Poison call) is not cleared: Run and
// RunFuzzy re-raise it as a panic, RunErr returns it.
type Group struct {
	b Barrier

	mu      sync.Mutex
	stats   GroupStats
	running int // in-flight Run/RunErr/RunFuzzy invocations
}

// GroupStats aggregates the supersteps a Group has executed across its
// Run/RunErr/RunFuzzy invocations. For per-episode barrier telemetry
// (arrival spread, sync delay), construct the group's barrier with
// WithObserver — e.g. an Aggregate — instead.
type GroupStats struct {
	// Runs counts completed Run/RunErr/RunFuzzy invocations (including
	// ones cut short by an error or panic).
	Runs int
	// Steps counts supersteps actually executed across runs.
	Steps int
	// Wall is the cumulative wall-clock time spent inside runs.
	Wall time.Duration
}

// NewGroup wraps a barrier in a superstep runner. The group's worker count
// is the barrier's participant count.
func NewGroup(b Barrier) *Group { return &Group{b: b} }

// Workers returns the number of workers.
func (g *Group) Workers() int { return g.b.Participants() }

// Barrier returns the barrier synchronizing the group.
func (g *Group) Barrier() Barrier { return g.b }

// Stats returns the group's cumulative superstep statistics.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

func (g *Group) note(start time.Time, steps int) {
	g.mu.Lock()
	g.stats.Runs++
	g.stats.Steps += steps
	g.stats.Wall += time.Since(start)
	g.running--
	g.mu.Unlock()
}

// begin marks a run in flight, blocking Resize for its duration.
func (g *Group) begin() {
	g.mu.Lock()
	g.running++
	g.mu.Unlock()
}

// Resize changes the group's worker count, for barriers that support it
// (Resizable — the reconfigurable/adaptive barrier). The group must be
// between runs: a Group resize is the caller-synchronized quiescent path,
// and the next Run picks up the new worker count. To change membership
// while workers are running, use the barrier's own Grow/Shrink, which
// queue the change for an episode boundary.
func (g *Group) Resize(p int) error {
	r, ok := g.b.(Resizable)
	if !ok {
		return fmt.Errorf("softbarrier: %T does not support resizing", g.b)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running > 0 {
		return fmt.Errorf("softbarrier: cannot resize group with %d runs in flight", g.running)
	}
	return r.Resize(p)
}

// Grow adds n workers to the group between runs.
func (g *Group) Grow(n int) error { return g.Resize(g.b.Participants() + n) }

// Shrink removes n workers from the group between runs.
func (g *Group) Shrink(n int) error { return g.Resize(g.b.Participants() - n) }

// panicTracker coordinates panic recovery across a worker pool: the first
// panic of the earliest step wins, and every worker stops at that step's
// barrier boundary so nobody is stranded mid-episode. When the group's
// barrier is Abortable the tracker also poisons it on the first recorded
// panic, so siblings already parked in the barrier wake at once instead
// of relying on every worker reaching the next stop check.
type panicTracker struct {
	step  atomic.Int64 // earliest panicking step; steps beyond it are skipped
	total int          // the run's declared step count
	vals  []any        // per-worker recovered value (first one per worker)
	at    []int        // per-worker panicking step
	ab    Abortable    // the group's barrier, or nil if it is not abortable
}

func newPanicTracker(p, steps int, ab Abortable) *panicTracker {
	t := &panicTracker{total: steps, vals: make([]any, p), at: make([]int, p), ab: ab}
	t.step.Store(int64(steps))
	return t
}

// call runs f, recording a recovered panic against (id, step) and
// poisoning the group's barrier.
func (t *panicTracker) call(id, step int, f func()) {
	defer func() {
		r := recover()
		if r == nil || t.vals[id] != nil {
			return
		}
		t.vals[id] = r
		t.at[id] = step
		for {
			cur := t.step.Load()
			if int64(step) >= cur || t.step.CompareAndSwap(cur, int64(step)) {
				break
			}
		}
		if t.ab != nil {
			t.ab.Poison(fmt.Errorf("softbarrier: worker %d panicked in superstep %d: %v", id, step, r))
		}
	}()
	f()
}

// failed reports whether the tracker recorded any panic.
func (t *panicTracker) failed() bool { return t.step.Load() < int64(t.total) }

// abortedExternally reports a poison that did not come from this run's
// own panic recovery: supersteps are no longer synchronized and the pool
// must stop where it stands. Self-inflicted poison is excluded — those
// workers still drain deterministically to the recorded step boundary.
// (Poison is published after the boundary CAS, so observing the error
// implies observing the boundary.)
func (t *panicTracker) abortedExternally() bool {
	return t.ab != nil && !t.failed() && t.ab.Err() != nil
}

// stopped reports whether step is beyond the panic boundary. Every worker
// observes the boundary at the same barrier crossing: the panicking step's
// completion is ordered before this check by the barrier itself.
func (t *panicTracker) stopped(step int) bool { return int64(step) > t.step.Load() }

// rethrow re-raises the recorded panic, if any: the lowest-numbered worker
// of the earliest failing step. Call after the pool has drained.
func (t *panicTracker) rethrow(steps int) {
	fs := t.step.Load()
	if fs >= int64(steps) {
		return
	}
	for id := range t.vals {
		if t.vals[id] != nil && int64(t.at[id]) == fs {
			panic(t.vals[id])
		}
	}
}

// executed returns how many supersteps actually ran given the panic
// boundary.
func (t *panicTracker) executed(steps int) int {
	if fs := t.step.Load(); fs < int64(steps) {
		return int(fs) + 1
	}
	return steps
}

// heal inspects the barrier after the pool has drained. Failures the
// group injected itself (selfInflicted: a recorded panic or worker error)
// have served their purpose once every worker returned, so the barrier is
// Reset — the pool being drained is exactly the quiescent point Reset
// needs — and the group stays reusable. An external poison is returned
// instead, for the runner to propagate.
func (g *Group) heal(ab Abortable, selfInflicted bool) error {
	if ab == nil {
		return nil
	}
	err := ab.Err()
	if err == nil {
		return nil
	}
	if !selfInflicted {
		return err
	}
	if r, ok := ab.(interface{ Reset() }); ok {
		r.Reset()
	}
	return nil
}

// Run spawns one goroutine per worker and executes steps supersteps of
// fn(id, step), synchronizing after each. It returns when every worker has
// finished the last step. If fn panics, the barrier is poisoned so the
// remaining participants release immediately, every worker stops at the
// panicking step's boundary, and the panic is re-raised from Run (with
// the barrier healed for reuse). If the barrier is poisoned from outside
// mid-run, Run stops the pool and panics with the poison error.
func (g *Group) Run(steps int, fn func(id, step int)) {
	g.begin()
	start := time.Now()
	p := g.b.Participants()
	ab, _ := g.b.(Abortable)
	t := newPanicTracker(p, steps, ab)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				if t.stopped(step) || t.abortedExternally() {
					return
				}
				t.call(id, step, func() { fn(id, step) })
				g.b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	g.note(start, t.executed(steps))
	perr := g.heal(ab, t.failed())
	t.rethrow(steps)
	if perr != nil {
		panic(perr)
	}
}

// RunErr is Run with error propagation: fn may fail, and a failing worker
// poisons the barrier, so parked siblings wake immediately and no worker
// starts a step past the failing one. Workers always finish the failing
// step itself (fn is never interrupted), so at most one step's extra work
// runs after the first failure. It returns the error
// of the lowest-numbered failing worker of the earliest failing step,
// with the barrier healed for reuse. A panic in fn is recovered like in
// Run and re-raised after the pool drains; panics take precedence over
// errors. If the barrier is poisoned from outside mid-run, RunErr stops
// the pool and returns the poison error.
func (g *Group) RunErr(steps int, fn func(id, step int) error) error {
	g.begin()
	start := time.Now()
	p := g.b.Participants()
	ab, _ := g.b.(Abortable)
	t := newPanicTracker(p, steps, ab)
	errs := make([]error, p)
	errStep := make([]int, p)
	var failedStep atomic.Int64
	failedStep.Store(int64(steps))
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				if int64(step) > failedStep.Load() || t.stopped(step) {
					// A previous step failed; every worker observes this
					// boundary no later than the crossing after the failing
					// step (the poison wake, or the barrier itself).
					return
				}
				if t.abortedExternally() && failedStep.Load() == int64(steps) {
					return // external poison and no worker error recorded
				}
				t.call(id, step, func() {
					if err := fn(id, step); err != nil && errs[id] == nil {
						errs[id] = err
						errStep[id] = step
						// Record the earliest failing step.
						for {
							cur := failedStep.Load()
							if int64(step) >= cur || failedStep.CompareAndSwap(cur, int64(step)) {
								break
							}
						}
						if ab != nil {
							ab.Poison(fmt.Errorf("softbarrier: worker %d failed in superstep %d: %w", id, step, err))
						}
					}
				})
				g.b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	executed := t.executed(steps)
	if fs := failedStep.Load(); fs < int64(executed) {
		executed = int(fs) + 1
	}
	g.note(start, executed)
	perr := g.heal(ab, t.failed() || failedStep.Load() < int64(steps))
	t.rethrow(steps)
	if fs := failedStep.Load(); fs < int64(steps) {
		for id := 0; id < p; id++ {
			if errs[id] != nil && int64(errStep[id]) == fs {
				return errs[id]
			}
		}
	}
	return perr
}

// RunFuzzy is Run for a PhasedBarrier: after each step's dependent work,
// the worker arrives at the barrier, executes the slack function (work
// that needs nothing from other workers this step), and only then blocks.
// Load imbalance in fn is hidden behind slackFn, the fuzzy-barrier usage
// the paper's dynamic placement assumes. Either function may be nil. A
// panic in either function is recovered like in Run: the barrier is
// poisoned, workers stop at the same step boundary and the panic
// re-raises from RunFuzzy (with the barrier healed for reuse). An
// external poison stops the pool and re-raises as a panic, like Run.
func (g *Group) RunFuzzy(steps int, fn, slackFn func(id, step int)) {
	pb, ok := g.b.(PhasedBarrier)
	if !ok {
		panic("softbarrier: RunFuzzy needs a PhasedBarrier")
	}
	g.begin()
	start := time.Now()
	p := g.b.Participants()
	ab, _ := g.b.(Abortable)
	t := newPanicTracker(p, steps, ab)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				if t.stopped(step) || t.abortedExternally() {
					return
				}
				if fn != nil {
					t.call(id, step, func() { fn(id, step) })
				}
				pb.Arrive(id)
				if slackFn != nil {
					t.call(id, step, func() { slackFn(id, step) })
				}
				pb.Await(id)
			}
		}(id)
	}
	wg.Wait()
	g.note(start, t.executed(steps))
	perr := g.heal(ab, t.failed())
	t.rethrow(steps)
	if perr != nil {
		panic(perr)
	}
}
