package softbarrier

import (
	"sync"
	"sync/atomic"
	"time"
)

// Group runs bulk-synchronous supersteps: a fixed pool of workers executes
// a step function, with a barrier between consecutive steps so that no
// worker starts step k+1 before every worker finished step k. It is the
// BSP-loop boilerplate every barrier user otherwise rewrites.
//
// A panicking step function does not strand the other workers: the panic
// is recovered, every worker stops at the same step boundary, and the
// panic is re-raised to the caller once the pool has drained (the earliest
// failing step's lowest-numbered worker wins, mirroring RunErr).
type Group struct {
	b Barrier

	mu    sync.Mutex
	stats GroupStats
}

// GroupStats aggregates the supersteps a Group has executed across its
// Run/RunErr/RunFuzzy invocations. For per-episode barrier telemetry
// (arrival spread, sync delay), construct the group's barrier with
// WithObserver — e.g. an Aggregate — instead.
type GroupStats struct {
	// Runs counts completed Run/RunErr/RunFuzzy invocations (including
	// ones cut short by an error or panic).
	Runs int
	// Steps counts supersteps actually executed across runs.
	Steps int
	// Wall is the cumulative wall-clock time spent inside runs.
	Wall time.Duration
}

// NewGroup wraps a barrier in a superstep runner. The group's worker count
// is the barrier's participant count.
func NewGroup(b Barrier) *Group { return &Group{b: b} }

// Workers returns the number of workers.
func (g *Group) Workers() int { return g.b.Participants() }

// Barrier returns the barrier synchronizing the group.
func (g *Group) Barrier() Barrier { return g.b }

// Stats returns the group's cumulative superstep statistics.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

func (g *Group) note(start time.Time, steps int) {
	g.mu.Lock()
	g.stats.Runs++
	g.stats.Steps += steps
	g.stats.Wall += time.Since(start)
	g.mu.Unlock()
}

// panicTracker coordinates panic recovery across a worker pool: the first
// panic of the earliest step wins, and every worker stops at that step's
// barrier boundary so nobody is stranded mid-episode.
type panicTracker struct {
	step atomic.Int64 // earliest panicking step; steps beyond it are skipped
	vals []any        // per-worker recovered value (first one per worker)
	at   []int        // per-worker panicking step
}

func newPanicTracker(p, steps int) *panicTracker {
	t := &panicTracker{vals: make([]any, p), at: make([]int, p)}
	t.step.Store(int64(steps))
	return t
}

// call runs f, recording a recovered panic against (id, step).
func (t *panicTracker) call(id, step int, f func()) {
	defer func() {
		r := recover()
		if r == nil || t.vals[id] != nil {
			return
		}
		t.vals[id] = r
		t.at[id] = step
		for {
			cur := t.step.Load()
			if int64(step) >= cur || t.step.CompareAndSwap(cur, int64(step)) {
				break
			}
		}
	}()
	f()
}

// stopped reports whether step is beyond the panic boundary. Every worker
// observes the boundary at the same barrier crossing: the panicking step's
// completion is ordered before this check by the barrier itself.
func (t *panicTracker) stopped(step int) bool { return int64(step) > t.step.Load() }

// rethrow re-raises the recorded panic, if any: the lowest-numbered worker
// of the earliest failing step. Call after the pool has drained.
func (t *panicTracker) rethrow(steps int) {
	fs := t.step.Load()
	if fs >= int64(steps) {
		return
	}
	for id := range t.vals {
		if t.vals[id] != nil && int64(t.at[id]) == fs {
			panic(t.vals[id])
		}
	}
}

// executed returns how many supersteps actually ran given the panic
// boundary.
func (t *panicTracker) executed(steps int) int {
	if fs := t.step.Load(); fs < int64(steps) {
		return int(fs) + 1
	}
	return steps
}

// Run spawns one goroutine per worker and executes steps supersteps of
// fn(id, step), synchronizing after each. It returns when every worker has
// finished the last step. If fn panics, the remaining participants are
// released at the step boundary and the panic is re-raised from Run.
func (g *Group) Run(steps int, fn func(id, step int)) {
	start := time.Now()
	p := g.b.Participants()
	t := newPanicTracker(p, steps)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				if t.stopped(step) {
					return
				}
				t.call(id, step, func() { fn(id, step) })
				g.b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	g.note(start, t.executed(steps))
	t.rethrow(steps)
}

// RunErr is Run with error propagation: fn may fail, and after a step in
// which any worker failed, no worker starts the next step. Workers always
// finish the step they are in (everyone must reach the barrier or the
// others would be stranded), so at most one extra step's work runs after
// the first failure. It returns the error of the lowest-numbered failing
// worker of the earliest failing step. A panic in fn is recovered like in
// Run and re-raised after the pool drains; panics take precedence over
// errors.
func (g *Group) RunErr(steps int, fn func(id, step int) error) error {
	start := time.Now()
	p := g.b.Participants()
	t := newPanicTracker(p, steps)
	errs := make([]error, p)
	errStep := make([]int, p)
	var failedStep atomic.Int64
	failedStep.Store(int64(steps))
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				if int64(step) > failedStep.Load() || t.stopped(step) {
					// A previous step failed; every worker observes this
					// at the same boundary because the barrier ordered
					// the failing step's completion before this check.
					return
				}
				t.call(id, step, func() {
					if err := fn(id, step); err != nil && errs[id] == nil {
						errs[id] = err
						errStep[id] = step
						// Record the earliest failing step.
						for {
							cur := failedStep.Load()
							if int64(step) >= cur || failedStep.CompareAndSwap(cur, int64(step)) {
								break
							}
						}
					}
				})
				g.b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	executed := t.executed(steps)
	if fs := failedStep.Load(); fs < int64(executed) {
		executed = int(fs) + 1
	}
	g.note(start, executed)
	t.rethrow(steps)
	if fs := failedStep.Load(); fs < int64(steps) {
		for id := 0; id < p; id++ {
			if errs[id] != nil && int64(errStep[id]) == fs {
				return errs[id]
			}
		}
	}
	return nil
}

// RunFuzzy is Run for a PhasedBarrier: after each step's dependent work,
// the worker arrives at the barrier, executes the slack function (work
// that needs nothing from other workers this step), and only then blocks.
// Load imbalance in fn is hidden behind slackFn, the fuzzy-barrier usage
// the paper's dynamic placement assumes. Either function may be nil. A
// panic in either function is recovered like in Run: workers stop at the
// same step boundary and the panic re-raises from RunFuzzy.
func (g *Group) RunFuzzy(steps int, fn, slackFn func(id, step int)) {
	pb, ok := g.b.(PhasedBarrier)
	if !ok {
		panic("softbarrier: RunFuzzy needs a PhasedBarrier")
	}
	start := time.Now()
	p := g.b.Participants()
	t := newPanicTracker(p, steps)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				if t.stopped(step) {
					return
				}
				if fn != nil {
					t.call(id, step, func() { fn(id, step) })
				}
				pb.Arrive(id)
				if slackFn != nil {
					t.call(id, step, func() { slackFn(id, step) })
				}
				pb.Await(id)
			}
		}(id)
	}
	wg.Wait()
	g.note(start, t.executed(steps))
	t.rethrow(steps)
}
