package softbarrier

import (
	"sync"
	"sync/atomic"
)

// Group runs bulk-synchronous supersteps: a fixed pool of workers executes
// a step function, with a barrier between consecutive steps so that no
// worker starts step k+1 before every worker finished step k. It is the
// BSP-loop boilerplate every barrier user otherwise rewrites.
type Group struct {
	b Barrier
}

// NewGroup wraps a barrier in a superstep runner. The group's worker count
// is the barrier's participant count.
func NewGroup(b Barrier) *Group { return &Group{b: b} }

// Workers returns the number of workers.
func (g *Group) Workers() int { return g.b.Participants() }

// Run spawns one goroutine per worker and executes steps supersteps of
// fn(id, step), synchronizing after each. It returns when every worker has
// finished the last step. fn must not panic; a panicking step would strand
// the other workers at the barrier.
func (g *Group) Run(steps int, fn func(id, step int)) {
	p := g.b.Participants()
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				fn(id, step)
				g.b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
}

// RunErr is Run with error propagation: fn may fail, and after a step in
// which any worker failed, no worker starts the next step. Workers always
// finish the step they are in (everyone must reach the barrier or the
// others would be stranded), so at most one extra step's work runs after
// the first failure. It returns the error of the lowest-numbered failing
// worker of the earliest failing step.
func (g *Group) RunErr(steps int, fn func(id, step int) error) error {
	p := g.b.Participants()
	errs := make([]error, p)
	errStep := make([]int, p)
	var failedStep atomic.Int64
	failedStep.Store(int64(steps))
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				if int64(step) > failedStep.Load() {
					// A previous step failed; every worker observes this
					// at the same boundary because the barrier ordered
					// the failing step's completion before this check.
					return
				}
				if err := fn(id, step); err != nil && errs[id] == nil {
					errs[id] = err
					errStep[id] = step
					// Record the earliest failing step.
					for {
						cur := failedStep.Load()
						if int64(step) >= cur || failedStep.CompareAndSwap(cur, int64(step)) {
							break
						}
					}
				}
				g.b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	if fs := failedStep.Load(); fs < int64(steps) {
		for id := 0; id < p; id++ {
			if errs[id] != nil && int64(errStep[id]) == fs {
				return errs[id]
			}
		}
	}
	return nil
}

// RunFuzzy is Run for a PhasedBarrier: after each step's dependent work,
// the worker arrives at the barrier, executes the slack function (work
// that needs nothing from other workers this step), and only then blocks.
// Load imbalance in fn is hidden behind slackFn, the fuzzy-barrier usage
// the paper's dynamic placement assumes. Either function may be nil.
func (g *Group) RunFuzzy(steps int, fn, slackFn func(id, step int)) {
	pb, ok := g.b.(PhasedBarrier)
	if !ok {
		panic("softbarrier: RunFuzzy needs a PhasedBarrier")
	}
	p := g.b.Participants()
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				if fn != nil {
					fn(id, step)
				}
				pb.Arrive(id)
				if slackFn != nil {
					slackFn(id, step)
				}
				pb.Await(id)
			}
		}(id)
	}
	wg.Wait()
}
