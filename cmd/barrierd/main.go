// Command barrierd is the networked barrier coordination daemon: clients
// connect over TCP, join named sessions, and synchronize episode by
// episode against a server-side combining tree whose degree tracks the
// measured arrival spread σ (internal/netbarrier).
//
// Usage:
//
//	barrierd [-listen 127.0.0.1:7643] [-watchdog 10s] [-replan 10]
//	         [-dynamic] [-elastic] [-tc SECONDS] [-sigma SECONDS]
//	         [-collective OP] [-placement POLICY]
//
// With -elastic, session membership may change between episodes: joins
// against a full session are parked and admitted at the next episode
// boundary, and a Leave shrinks the cohort at the next boundary instead
// of retiring the session only when everyone has left.
//
// With -placement, each session runs a predictive straggler-placement
// policy (reactive, ewma, trend, ewma-hys): the server observes every
// episode's arrival lags and, on the -replan cadence, rebuilds the
// session's combining tree with predicted stragglers in the shallowest
// slots. Placed sessions use MCS-shaped trees, whose depth diversity is
// what placement exploits.
//
// With -collective, every session is an AllReduce: arrivals may carry
// contributions (clients use ArriveReduce/AllReduce), releases carry the
// folded result, and payload-less arrivals contribute the op's identity.
// OP names a built-in softbarrier op — sum-u64, min-u64, max-u64,
// xor-u64, or sum-f64 — and clients must agree on it out-of-band (ops
// are code; only their names travel).
//
// The daemon serves until SIGINT or SIGTERM, then poisons every live
// session (members receive a "server closed" cause instead of a hang)
// and exits cleanly.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"softbarrier/internal/cli"
	"softbarrier/internal/netbarrier"
)

func main() {
	nf := cli.AddNetFlags()
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("barrierd: ")
	opt, err := nf.Options()
	if err != nil {
		log.Fatal(err)
	}
	opt.Logf = log.Printf

	ln, err := net.Listen("tcp", nf.Listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := netbarrier.NewServer(opt)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, shutting down", s)
		srv.Close()
	}()

	coll := "none"
	if opt.Op != nil {
		coll = opt.Op.Name
	}
	place := nf.Placement
	if place == "" {
		place = "none"
	}
	log.Printf("listening on %s (watchdog %v, replan every %d episodes, dynamic %v, elastic %v, collective %s, placement %s)",
		ln.Addr(), opt.Watchdog, opt.ReplanEvery, opt.Dynamic, opt.Elastic, coll, place)
	if err := srv.Serve(ln); err != nil && !errors.Is(err, netbarrier.ErrServerClosed) {
		log.Fatal(err)
	}
}
