// Command barrierd is the networked barrier coordination daemon: clients
// connect over TCP, join named sessions, and synchronize episode by
// episode against a server-side combining tree whose degree tracks the
// measured arrival spread σ (internal/netbarrier).
//
// Usage:
//
//	barrierd [-listen 127.0.0.1:7643] [-watchdog 10s] [-replan 10]
//	         [-dynamic] [-elastic] [-tc SECONDS] [-sigma SECONDS]
//	         [-collective OP] [-placement POLICY]
//	         [-role standalone|root|leaf] [-root ADDR]
//	         [-shards N] [-shard-id I]
//	         [-keepalive 15s] [-dial-timeout 5s]
//	         [-dial-attempts 3] [-dial-backoff 100ms]
//
// The last four tune the wire transport: -keepalive is the TCP
// keepalive probe period armed on every accepted and dialed connection
// (0 keeps the 15s default, negative disables probing), and the -dial-*
// trio bounds each leaf→root connection attempt and the doubling
// backoff-retry loop around it during fleet bringup.
//
// With -elastic, session membership may change between episodes: joins
// against a full session are parked and admitted at the next episode
// boundary, and a Leave shrinks the cohort at the next boundary instead
// of retiring the session only when everyone has left.
//
// With -placement, each session runs a predictive straggler-placement
// policy (reactive, ewma, trend, ewma-hys): the server observes every
// episode's arrival lags and, on the -replan cadence, rebuilds the
// session's combining tree with predicted stragglers in the shallowest
// slots. Placed sessions use MCS-shaped trees, whose depth diversity is
// what placement exploits.
//
// With -collective, every session is an AllReduce: arrivals may carry
// contributions (clients use ArriveReduce/AllReduce), releases carry the
// folded result, and payload-less arrivals contribute the op's identity.
// OP names a built-in softbarrier op — sum-u64, min-u64, max-u64,
// xor-u64, or sum-f64 — and clients must agree on it out-of-band (ops
// are code; only their names travel).
//
// # Hierarchical deployment
//
// One barrierd caps out at one accept loop and one process's fan-out; a
// fleet splits the population across leaf shards that each combine their
// local clients and synchronize through a root (internal/shardbarrier):
//
//	barrierd -role root -listen 10.0.0.1:7643
//	barrierd -role leaf -root 10.0.0.1:7643 -shards 4 -shard-id 0 -listen :7643
//	barrierd -role leaf -root 10.0.0.1:7643 -shards 4 -shard-id 1 -listen :7643
//	...
//
// A root is an ordinary barrierd that leaves join with shard frames;
// -role root exists for operational clarity, not a different server.
// Every leaf of one fleet uses a distinct -shard-id in [0, -shards) —
// the shard id pins the leaf's slot in the root's deterministic
// ascending-id fold, keeping non-commutative collectives bit-identical
// fleet-wide. Leaves and root must agree on -collective (and should
// agree on the planner flags); clients connect to any leaf and use the
// leaf-local participant count for their session. Mixed protocol
// revisions fail fast: every handshake carries a version byte, and a
// mismatch is refused with an error naming both versions.
//
// The daemon serves until SIGINT or SIGTERM, then poisons every live
// session (members receive a "server closed" cause instead of a hang)
// and exits cleanly.
package main

import (
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"softbarrier/internal/cli"
	"softbarrier/internal/netbarrier"
	"softbarrier/internal/shardbarrier"
)

func main() {
	nf := cli.AddNetFlags()
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("barrierd: ")
	opt, err := nf.Options()
	if err != nil {
		log.Fatal(err)
	}
	if err := nf.ValidateRole(); err != nil {
		log.Fatal(err)
	}
	opt.Logf = log.Printf

	ln, err := nf.Transport().Listen(nf.Listen)
	if err != nil {
		log.Fatal(err)
	}

	// The serve/close pair the role selects; a root is an ordinary server
	// (shard frames are part of the base protocol), a leaf wraps one.
	var serve func() error
	var closer interface{ Close() error }
	switch nf.Role {
	case "leaf":
		leaf := shardbarrier.NewLeaf(shardbarrier.LeafOptions{
			Net:          opt,
			Root:         nf.Root,
			Index:        nf.ShardID,
			Shards:       nf.Shards,
			DialTimeout:  nf.DialTimeout,
			DialAttempts: nf.DialAttempts,
			DialBackoff:  nf.DialBackoff,
		})
		serve = func() error { return leaf.Serve(ln) }
		closer = leaf
	default:
		srv := netbarrier.NewServer(opt)
		serve = func() error { return srv.Serve(ln) }
		closer = srv
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, shutting down", s)
		closer.Close()
	}()

	coll := "none"
	if opt.Op != nil {
		coll = opt.Op.Name
	}
	place := nf.Placement
	if place == "" {
		place = "none"
	}
	role := nf.Role
	if role == "leaf" {
		role = "leaf of " + nf.Root
	}
	log.Printf("listening on %s as %s (watchdog %v, replan every %d episodes, dynamic %v, elastic %v, collective %s, placement %s)",
		ln.Addr(), role, opt.Watchdog, opt.ReplanEvery, opt.Dynamic, opt.Elastic, coll, place)
	if err := serve(); err != nil && !errors.Is(err, netbarrier.ErrServerClosed) {
		log.Fatal(err)
	}
}
