// Command tracegen records a synthetic workload as a replayable trace
// file (one iteration per line, comma-separated per-processor work times
// in seconds), the interchange format cmd/barriersim's -tracefile flag
// replays. Sites with real per-iteration timing data can write the same
// format directly and run the whole experiment harness on their traces.
//
// Usage:
//
//	tracegen -p 64 -iters 200 -workload normal -sigma 0.25ms > trace.csv
//	tracegen -p 56 -workload sor -dy 210 > sor.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"softbarrier/internal/ksr"
	"softbarrier/internal/sor"
	"softbarrier/internal/stats"
	"softbarrier/internal/workload"
)

func main() {
	var (
		p     = flag.Int("p", 64, "number of processors")
		iters = flag.Int("iters", 200, "iterations to record")
		kind  = flag.String("workload", "normal", "workload: normal | systemic | evolving | sor")
		mu    = flag.Duration("mu", 10*time.Millisecond, "mean work time")
		sigma = flag.Duration("sigma", 250*time.Microsecond, "work time standard deviation")
		sprd  = flag.Duration("spread", time.Millisecond, "systemic offset spread")
		rho   = flag.Float64("rho", 0.9, "evolving workload autocorrelation")
		dx    = flag.Int("dx", 60, "SOR rows per processor")
		dy    = flag.Int("dy", 210, "SOR y-dimension")
		seed  = flag.Uint64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	var w workload.Workload
	switch *kind {
	case "normal":
		w = workload.IID{N: *p, Dist: stats.Normal{Mu: mu.Seconds(), Sigma: sigma.Seconds()}}
	case "systemic":
		w = workload.Systemic{
			Base:    workload.IID{N: *p, Dist: stats.Normal{Mu: mu.Seconds(), Sigma: sigma.Seconds()}},
			Offsets: workload.LinearOffsets(*p, sprd.Seconds()),
		}
	case "evolving":
		w = &workload.Evolving{N: *p, Dist: stats.Normal{Mu: mu.Seconds(), Sigma: sigma.Seconds()},
			Rho: *rho, InnovSigma: sigma.Seconds() / 4}
	case "sor":
		m := ksr.New56()
		if *p != m.P() {
			// Scale the machine's rings to the requested size.
			half := *p / 2
			if half < 2 || *p%2 != 0 {
				fmt.Fprintln(os.Stderr, "sor workload needs an even processor count ≥ 4")
				os.Exit(2)
			}
			m.Rings = []int{half, *p - half}
		}
		w = sor.NewTimingModel(m, *dx, *dy)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *kind)
		os.Exit(2)
	}

	tr := workload.Record(w, *iters, *seed)
	if err := workload.WriteTrace(os.Stdout, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
