// Command barriersim simulates one barrier configuration and reports its
// synchronization-delay statistics.
//
// Usage:
//
//	barriersim -p 4096 -degree 16 -sigma 0.25ms [-tree mcs] [-dynamic]
//	           [-slack 4ms] [-episodes 200] [-warmup 20] [-tc 20us] [-seed 1]
//	           [-placement ewma] [-replan 5] [-cache DIR] [-workers N]
//
// Durations accept Go syntax (e.g. 250us, 0.25ms). With -cache, the run's
// result is memoized on disk under its full configuration, so repeating a
// configuration is instant; -trace and -tracefile runs bypass the cache
// (the timeline needs a live simulation, and trace files are not hashed).
//
// With -placement, a predictive straggler-placement policy (see
// softbarrier.PlacementNames) observes every episode's arrival lags and,
// every -replan episodes, rebuilds the tree with its laggiest-first
// ranking in the shallowest slots. Placement runs ignore -slack (the
// policy engine drives episodes directly) and bypass the cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"softbarrier"
	"softbarrier/internal/barriersim"
	"softbarrier/internal/cli"
	"softbarrier/internal/model"
	"softbarrier/internal/stats"
	"softbarrier/internal/sweep"
	"softbarrier/internal/trace"
	"softbarrier/internal/workload"
)

func main() {
	var (
		p        = flag.Int("p", 4096, "number of processors")
		degree   = flag.Int("degree", 4, "combining tree degree")
		sigma    = flag.Duration("sigma", 250*time.Microsecond, "arrival time standard deviation")
		tc       = flag.Duration("tc", 20*time.Microsecond, "counter update time")
		dynamic  = flag.Bool("dynamic", false, "enable dynamic placement")
		slack    = flag.Duration("slack", 0, "fuzzy barrier slack (0 = plain barrier)")
		episodes = flag.Int("episodes", 200, "measured episodes")
		warmup   = flag.Int("warmup", 20, "warm-up episodes")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		showTr   = flag.Bool("trace", false, "print the final episode's counter timeline")
		traceIn  = flag.String("tracefile", "", "replay work times from a trace file (see cmd/tracegen) instead of -sigma")
		place    = flag.String("placement", "", "predictive straggler-placement policy, one of: "+strings.Join(softbarrier.PlacementNames(), ", "))
		replan   = flag.Int("replan", 5, "episodes between placement re-plans (with -placement)")
		treeF    = cli.AddTreeFlags()
		engF     = cli.AddEngineFlags()
	)
	flag.Parse()

	var w workload.Workload
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		tr, err := workload.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if tr.P() != *p {
			*p = tr.P()
		}
		w = tr
	}

	tree, err := treeF.Build(*p, *degree)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engine, err := engF.Engine(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := barriersim.Config{Tc: tc.Seconds(), Dynamic: *dynamic}
	if w == nil {
		w = workload.IID{N: *p, Dist: stats.Normal{Sigma: sigma.Seconds()}}
	}

	if *place != "" {
		mk, err := cli.Placement(*place)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pr := barriersim.RunPlacement(tree, cfg, w, mk(), *replan, *warmup, *episodes, *seed)
		st := tree.ShapeStats()
		fmt.Printf("tree: %s degree=%d levels=%d counters=%d mean depth=%.2f\n",
			tree.Kind, tree.Degree, tree.Levels, st.Counters, st.MeanDepth)
		fmt.Printf("placement: %s, re-planned every %d episodes, %d rebuilds\n",
			*place, *replan, pr.Rebuilds)
		fmt.Printf("workload: %v, %d episodes after %d warm-up\n", w, *episodes, *warmup)
		fmt.Printf("mean sync delay: %v (update %v + contention %v)\n",
			cli.Dur(pr.MeanSync), cli.Dur(pr.MeanUpdate), cli.Dur(pr.MeanContention))
		fmt.Printf("p95 sync delay:  %v\n", cli.Dur(stats.Percentile(pr.SyncDelays, 95)))
		return
	}

	var rec *trace.Recorder
	run := func(int, uint64) barriersim.RunResult {
		it := workload.NewIterator(w, slack.Seconds(), *seed)
		sim := barriersim.New(tree, cfg)
		if *showTr {
			rec = &trace.Recorder{Keep: 1}
			sim.SetTracer(rec)
		}
		return sim.Run(it, *warmup, *episodes)
	}

	var rr barriersim.RunResult
	if engine.Cache != nil && !*showTr && *traceIn == "" {
		// A single-point sweep buys the on-disk memoization: repeating a
		// configuration never re-simulates.
		key := fmt.Sprintf("p=%d d=%d kind=%s cfg=%+v workload=%v slack=%g episodes=%d warmup=%d",
			*p, *degree, tree.Kind, cfg, w, slack.Seconds(), *episodes, *warmup)
		rr = sweep.Run(engine, sweep.Spec{Name: "barriersim", Keys: []string{key}, BaseSeed: *seed}, run)[0]
	} else {
		rr = run(0, *seed)
	}

	st := tree.ShapeStats()
	fmt.Printf("tree: %s degree=%d levels=%d counters=%d mean depth=%.2f\n",
		tree.Kind, tree.Degree, tree.Levels, st.Counters, st.MeanDepth)
	if *traceIn != "" {
		fmt.Printf("workload: %v from %s, slack=%v, %d episodes after %d warm-up\n",
			w, *traceIn, *slack, *episodes, *warmup)
	} else {
		fmt.Printf("workload: σ=%v (%.1f·t_c), slack=%v, %d episodes after %d warm-up\n",
			*sigma, sigma.Seconds()/tc.Seconds(), *slack, *episodes, *warmup)
	}
	fmt.Printf("mean sync delay: %v (update %v + contention %v)\n",
		cli.Dur(rr.MeanSync), cli.Dur(rr.MeanUpdate), cli.Dur(rr.MeanContention))
	fmt.Printf("p95 sync delay:  %v\n", cli.Dur(stats.Percentile(rr.SyncDelays, 95)))
	fmt.Printf("last proc depth: %.2f   comm overhead: %.3f   swaps/episode: %.2f\n",
		rr.MeanLastDepth, rr.CommOverhead, rr.MeanSwaps)

	if est, err := model.EstimateDelay(model.Params{P: *p, Degree: *degree, Sigma: sigma.Seconds(), Tc: tc.Seconds()}); err == nil {
		fmt.Printf("analytic model:  %v\n", cli.Dur(est))
	} else {
		fmt.Printf("analytic model:  n/a (%v)\n", err)
	}

	if rec != nil {
		if e := rec.Last(); e != nil {
			fmt.Printf("\nfinal episode timeline (one lane per counter):\n%s\n%s", e.Timeline(100), e.Summary())
		}
	}
}
