// Command degreeopt sweeps combining-tree degrees for a given system size
// and load imbalance, printing the simulated delay of every candidate
// degree next to the analytic model's estimate, and the recommended
// degrees of both.
//
// Usage:
//
//	degreeopt -p 4096 -sigma 0.5ms [-tc 20us] [-episodes 100] [-tree mcs]
//	          [-seed 1] [-workers N] [-cache DIR]
//
// Candidate degrees simulate in parallel across -workers workers (default:
// all CPUs); the output is identical for every worker count. With -cache,
// per-degree results are memoized on disk.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/cli"
	"softbarrier/internal/model"
	"softbarrier/internal/stats"
)

func main() {
	var (
		p        = flag.Int("p", 4096, "number of processors")
		sigma    = flag.Duration("sigma", 500*time.Microsecond, "arrival time standard deviation")
		tc       = flag.Duration("tc", 20*time.Microsecond, "counter update time")
		episodes = flag.Int("episodes", 100, "episodes per degree")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		treeF    = cli.AddTreeFlags()
		engF     = cli.AddEngineFlags()
	)
	flag.Parse()

	build, err := treeF.Builder()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engine, err := engF.Engine(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := barriersim.Config{Tc: tc.Seconds()}
	dist := stats.Normal{Sigma: sigma.Seconds()}

	sweep := barriersim.DegreeSweepOn(engine, *p, build, cfg, dist, *episodes, *seed)
	estOf := model.EstimateByDegree(*p, sigma.Seconds(), tc.Seconds())

	fmt.Printf("p=%d σ=%v (%.1f·t_c) t_c=%v episodes=%d tree=%s\n\n",
		*p, *sigma, sigma.Seconds()/tc.Seconds(), *tc, *episodes, treeF.Kind)
	fmt.Printf("%8s %7s %14s %14s\n", "degree", "levels", "sim delay", "model delay")
	for _, r := range sweep {
		est := "      -"
		if v, ok := estOf[r.Degree]; ok {
			est = fmt.Sprintf("%14v", cli.Dur(v))
		}
		fmt.Printf("%8d %7d %14v %s\n", r.Degree, r.Levels, cli.Dur(r.MeanSync), est)
	}

	best := barriersim.Best(sweep)
	estBest := model.EstimateOptimalDegree(*p, sigma.Seconds(), tc.Seconds())
	fmt.Printf("\nsimulated optimum: degree %d (%v)\n", best.Degree, cli.Dur(best.MeanSync))
	fmt.Printf("model recommends:  degree %d (estimated %v)\n", estBest.Degree, cli.Dur(estBest.Delay))
	if d4, ok := barriersim.DelayOf(sweep, 4); ok && best.MeanSync > 0 {
		fmt.Printf("speedup of optimum over degree 4: %.2f\n", d4/best.MeanSync)
	}
}
