// Command degreeopt sweeps combining-tree degrees for a given system size
// and load imbalance, printing the simulated delay of every candidate
// degree next to the analytic model's estimate, and the recommended
// degrees of both.
//
// Usage:
//
//	degreeopt -p 4096 -sigma 0.5ms [-tc 20us] [-episodes 100] [-mcs] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"time"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/model"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

func main() {
	var (
		p        = flag.Int("p", 4096, "number of processors")
		sigma    = flag.Duration("sigma", 500*time.Microsecond, "arrival time standard deviation")
		tc       = flag.Duration("tc", 20*time.Microsecond, "counter update time")
		episodes = flag.Int("episodes", 100, "episodes per degree")
		mcs      = flag.Bool("mcs", false, "use MCS-style trees instead of classic")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	build := topology.NewClassic
	if *mcs {
		build = topology.NewMCS
	}
	cfg := barriersim.Config{Tc: tc.Seconds()}
	dist := stats.Normal{Sigma: sigma.Seconds()}

	sweep := barriersim.DegreeSweep(*p, build, cfg, dist, *episodes, *seed)
	estimates := model.EstimateSweep(*p, sigma.Seconds(), tc.Seconds())
	estOf := make(map[int]float64, len(estimates))
	for _, e := range estimates {
		estOf[e.Degree] = e.Delay
	}

	fmt.Printf("p=%d σ=%v (%.1f·t_c) t_c=%v episodes=%d\n\n",
		*p, *sigma, sigma.Seconds()/tc.Seconds(), *tc, *episodes)
	fmt.Printf("%8s %7s %14s %14s\n", "degree", "levels", "sim delay", "model delay")
	for _, r := range sweep {
		est := "      -"
		if v, ok := estOf[r.Degree]; ok {
			est = fmt.Sprintf("%14v", dur(v))
		}
		fmt.Printf("%8d %7d %14v %s\n", r.Degree, r.Levels, dur(r.MeanSync), est)
	}

	best := barriersim.Best(sweep)
	estBest := model.EstimateOptimalDegree(*p, sigma.Seconds(), tc.Seconds())
	fmt.Printf("\nsimulated optimum: degree %d (%v)\n", best.Degree, dur(best.MeanSync))
	fmt.Printf("model recommends:  degree %d (estimated %v)\n", estBest.Degree, dur(estBest.Delay))
	if d4, ok := barriersim.DelayOf(sweep, 4); ok && best.MeanSync > 0 {
		fmt.Printf("speedup of optimum over degree 4: %.2f\n", d4/best.MeanSync)
	}
}

func dur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second)).Round(100 * time.Nanosecond)
}
