// Command sorbench runs the paper's SOR relaxation with real goroutines
// and a selectable barrier from the softbarrier library, reporting
// wall-clock time per iteration and verifying the result against the
// sequential solver.
//
// This is the goroutine analogue of the paper's §7 KSR1 program. Absolute
// numbers depend on the Go scheduler and core count (the quantitative
// reproduction uses the simulator; see cmd/experiments), but the program
// demonstrates the library end-to-end on a real workload.
//
// Usage:
//
//	sorbench -p 8 -dx 60 -dy 210 -iters 200 -barrier dynamic -degree 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"softbarrier"
	"softbarrier/internal/sor"
)

// episodeLog collects every barrier episode's telemetry for the -stats
// JSON dump. Emission points are serialized by the barrier, but the
// observer contract does not promise a single goroutine, so lock anyway.
type episodeLog struct {
	mu       sync.Mutex
	episodes []softbarrier.EpisodeStats
}

func (l *episodeLog) Episode(st softbarrier.EpisodeStats) {
	l.mu.Lock()
	l.episodes = append(l.episodes, st)
	l.mu.Unlock()
}

// dump writes the collected episodes as JSON to path ("-" for stdout),
// wrapped with the run configuration and the aggregate view.
func (l *episodeLog) dump(path string, cfg map[string]any, agg *softbarrier.Aggregate) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"config":   cfg,
		"summary":  agg.Summary(),
		"episodes": l.episodes,
	})
}

// multiObserver fans one episode stream out to several observers.
type multiObserver []softbarrier.Observer

func (m multiObserver) Episode(st softbarrier.EpisodeStats) {
	for _, o := range m {
		o.Episode(st)
	}
}

func main() {
	var (
		p        = flag.Int("p", 8, "number of worker goroutines")
		dx       = flag.Int("dx", 60, "grid rows per worker")
		dy       = flag.Int("dy", 210, "grid columns")
		iters    = flag.Int("iters", 200, "relaxation iterations")
		barrier  = flag.String("barrier", "tree", "barrier: central | tree | mcs | dynamic | adaptive | dissemination | tournament")
		degree   = flag.Int("degree", 4, "tree degree for tree-based barriers")
		method   = flag.String("method", "jacobi", "relaxation method: jacobi (the paper's two-array sweep) | sor (red/black over-relaxation, ω*)")
		stats    = flag.String("stats", "", "dump per-episode barrier telemetry as JSON to this file (\"-\" for stdout)")
		eps      = flag.Float64("eps", 0, "run -method sor to this RMS residual instead of a fixed sweep count (-iters caps it); the residual is folded through the barrier's AllReduce")
		chkEvery = flag.Int("check-every", 10, "sweeps between residual convergence checks when -eps is set")
	)
	flag.Parse()

	if *eps > 0 && *method != "sor" {
		fmt.Fprintln(os.Stderr, "-eps requires -method sor")
		os.Exit(2)
	}

	var opts []softbarrier.Option
	if *eps > 0 {
		// The convergence test is a sum-f64 AllReduce riding the barrier.
		opts = append(opts, softbarrier.WithCollective(softbarrier.OpSumFloat64()))
	}
	log := &episodeLog{}
	agg := softbarrier.NewAggregate()
	if *stats != "" {
		opts = append(opts, softbarrier.WithObserver(multiObserver{log, agg}))
	}

	var b sor.Barrier
	switch *barrier {
	case "central":
		b = softbarrier.NewCentral(*p, opts...)
	case "tree":
		b = softbarrier.NewCombiningTree(*p, *degree, opts...)
	case "mcs":
		b = softbarrier.NewMCSTree(*p, *degree, opts...)
	case "dynamic":
		b = softbarrier.NewDynamic(*p, *degree, opts...)
	case "adaptive":
		b = softbarrier.NewAdaptive(*p, 10, 0, opts...)
	case "dissemination":
		b = softbarrier.NewDissemination(*p, opts...)
	case "tournament":
		b = softbarrier.NewTournament(*p, opts...)
	default:
		fmt.Fprintf(os.Stderr, "unknown barrier %q\n", *barrier)
		os.Exit(2)
	}

	nx := *p**dx + 2 // interior rows plus fixed boundary
	mk := func() *sor.Grid {
		g := sor.NewGrid(nx, *dy+2)
		for y := 0; y < *dy+2; y++ {
			g.SetBoth(0, y, 1) // hot upper boundary drives the relaxation
		}
		return g
	}

	ref := mk()
	g := mk()
	var seqTime, parTime time.Duration
	var buf, refBuf int
	switch *method {
	case "jacobi":
		seqStart := time.Now()
		refBuf = ref.SolveSeq(*iters)
		seqTime = time.Since(seqStart)
		parStart := time.Now()
		buf = g.SolvePar(*p, *iters, b)
		parTime = time.Since(parStart)
	case "sor":
		omega := sor.OmegaOpt(nx-2, *dy)
		fmt.Printf("red/black SOR with ω* = %.4f\n", omega)
		if *eps > 0 {
			cb, ok := b.(sor.ConvergeBarrier)
			if !ok {
				fmt.Fprintf(os.Stderr, "barrier %q cannot carry the residual AllReduce; use tree, mcs, dynamic or adaptive\n", *barrier)
				os.Exit(2)
			}
			seqStart := time.Now()
			seqSweeps, seqRMS := ref.SolveSORSeqUntil(omega, *eps, *chkEvery, *iters, *p)
			seqTime = time.Since(seqStart)
			parStart := time.Now()
			parSweeps, parRMS, err := g.SolveSORParUntil(*p, omega, *eps, *chkEvery, *iters, cb)
			parTime = time.Since(parStart)
			if err != nil {
				fmt.Fprintf(os.Stderr, "parallel solve failed: %v\n", err)
				os.Exit(1)
			}
			if parSweeps != seqSweeps || parRMS != seqRMS {
				fmt.Fprintf(os.Stderr, "FAIL: parallel converged at sweep %d (RMS %g), sequential at %d (RMS %g)\n",
					parSweeps, parRMS, seqSweeps, seqRMS)
				os.Exit(1)
			}
			conv := "converged"
			if parSweeps >= *iters && parRMS > *eps {
				conv = "gave up"
			}
			fmt.Printf("%s at sweep %d, RMS residual %.3g (target %.3g, checked every %d sweeps)\n",
				conv, parSweeps, parRMS, *eps, *chkEvery)
			*iters = parSweeps // per-iteration reporting below divides by sweeps run
		} else {
			seqStart := time.Now()
			ref.SolveSORSeq(omega, *iters)
			seqTime = time.Since(seqStart)
			parStart := time.Now()
			g.SolveSORPar(*p, omega, *iters, b)
			parTime = time.Since(parStart)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	if buf != refBuf || g.Checksum(buf) != ref.Checksum(refBuf) {
		fmt.Fprintln(os.Stderr, "FAIL: parallel result differs from sequential")
		os.Exit(1)
	}

	fmt.Printf("SOR %dx%d, %d iterations, %d workers, barrier=%s degree=%d\n",
		nx, *dy+2, *iters, *p, *barrier, *degree)
	fmt.Printf("sequential: %v total, %v/iteration\n", seqTime.Round(time.Millisecond), (seqTime / time.Duration(*iters)).Round(time.Microsecond))
	fmt.Printf("parallel:   %v total, %v/iteration\n", parTime.Round(time.Millisecond), (parTime / time.Duration(*iters)).Round(time.Microsecond))
	fmt.Printf("result verified against sequential solver (checksum %.6g)\n", g.Checksum(buf))
	if d, ok := b.(*softbarrier.DynamicBarrier); ok {
		fmt.Printf("dynamic placement performed %d swaps\n", d.Swaps())
	}
	if a, ok := b.(*softbarrier.AdaptiveBarrier); ok {
		rs := a.ReconfigStats()
		fmt.Printf("adaptive barrier: degree %d, σ estimate %v, epoch %d (%d rebuilds over %d evals, %d deferred)\n",
			a.Degree(), time.Duration(a.Sigma()*float64(time.Second)).Round(time.Microsecond),
			rs.LastPlan.Epoch, rs.Rebuilds, rs.Evals, rs.Deferred)
	}

	if *stats != "" {
		cfg := map[string]any{
			"p": *p, "dx": *dx, "dy": *dy, "iters": *iters,
			"barrier": *barrier, "degree": *degree, "method": *method,
		}
		if err := log.dump(*stats, cfg, agg); err != nil {
			fmt.Fprintf(os.Stderr, "stats dump failed: %v\n", err)
			os.Exit(1)
		}
		if *stats != "-" {
			sigma, n := agg.MeasuredSigma()
			fmt.Printf("telemetry: %d episodes to %s, measured σ %v\n",
				n, *stats, time.Duration(sigma*float64(time.Second)).Round(time.Nanosecond))
		}
	}
}
