// Command experiments reproduces the paper's tables and figures and prints
// them as text or markdown.
//
// Usage:
//
//	experiments [-run FIG3,FIG8] [-episodes 100] [-warmup 20] [-seed 1995]
//	            [-workers N] [-cache DIR] [-markdown]
//
// With no -run it reproduces everything in presentation order. Each
// experiment's parameter grid fans out over -workers parallel workers
// (default: all CPUs); tables are bit-identical for every worker count.
// With -cache, grid points are memoized on disk and re-runs only simulate
// configurations that changed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"softbarrier/internal/cli"
	"softbarrier/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		episodes = flag.Int("episodes", 0, "measured episodes per configuration (default: harness default)")
		warmup   = flag.Int("warmup", 0, "warm-up episodes (default: harness default)")
		seed     = flag.Uint64("seed", 0, "base PRNG seed (default: harness default)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		jsonOut  = flag.Bool("json", false, "emit tables as JSON (stable format for regression diffing)")
		plot     = flag.Bool("plot", false, "also render ASCII curve plots for figure-style experiments")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		engFlags = cli.AddEngineFlags()
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	// Harness defaults apply only to flags the user did not set: detecting
	// explicit flags with Visit lets -seed 0 and -warmup 0 mean what they
	// say instead of being mistaken for "unset".
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	o := experiments.DefaultOptions()
	if set["episodes"] {
		if *episodes <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: -episodes must be positive, got %d\n", *episodes)
			os.Exit(2)
		}
		o.Episodes = *episodes
	}
	if set["warmup"] {
		if *warmup < 0 {
			fmt.Fprintf(os.Stderr, "experiments: -warmup must be non-negative, got %d\n", *warmup)
			os.Exit(2)
		}
		o.Warmup = *warmup
	}
	if set["seed"] {
		o.Seed = *seed
	}
	engine, err := engFlags.Engine(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o.Engine = engine

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		table := runner(o)
		switch {
		case *jsonOut:
			s, err := table.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case *markdown:
			fmt.Println(table.Markdown())
		default:
			fmt.Println(table.String())
		}
		if *plot {
			if spec, ok := experiments.SpecFor(id); ok {
				chart, err := table.Plot(spec, 72, 16)
				if err != nil {
					fmt.Fprintf(os.Stderr, "plot %s: %v\n", id, err)
				} else {
					fmt.Println(chart)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s took %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if c := engine.Cache; c != nil {
		fmt.Fprintf(os.Stderr, "[cache: %d hits, %d misses]\n", c.Hits(), c.Misses())
	}
}
