package main

import "testing"

const sampleOut = `goos: linux
goarch: amd64
pkg: softbarrier/internal/netbarrier
BenchmarkNetBarrier/clients-2          	     300	     24408 ns/op	     512 B/op	      12 allocs/op
BenchmarkNetBarrier/clients-64         	     300	    569327.5 ns/op
PASS
ok  	softbarrier/internal/netbarrier	1.2s
`

func TestParseBench(t *testing.T) {
	rs, err := parseBench("./internal/netbarrier", []byte(sampleOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rs))
	}
	r := rs[0]
	if r.Name != "internal/netbarrier/BenchmarkNetBarrier/clients-2" ||
		r.Iters != 300 || r.NsPerOp != 24408 {
		t.Fatalf("first result = %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 512 || *r.AllocsPerOp != 12 {
		t.Fatalf("benchmem columns not parsed: %+v", r)
	}
	if rs[1].NsPerOp != 569327.5 || rs[1].BytesPerOp != nil {
		t.Fatalf("second result = %+v", rs[1])
	}
	if rs[1].Name != "internal/netbarrier/BenchmarkNetBarrier/clients-64" {
		t.Fatalf("name = %q", rs[1].Name)
	}

	if _, err := parseBench(".", []byte("PASS\nok softbarrier 0.1s\n")); err == nil {
		t.Fatal("no benchmark lines must error")
	}

	rs, err = parseBench(".", []byte("BenchmarkEq1-4   100   11.5 ns/op\n"))
	if err != nil || len(rs) != 1 || rs[0].Name != "BenchmarkEq1-4" {
		t.Fatalf("root-package result = %+v, err %v", rs, err)
	}
}
