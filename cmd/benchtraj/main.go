// Command benchtraj records the repo's performance trajectory: it runs
// the hot-path benchmark suite (in-process barrier episodes, netbarrier
// at 2/8/64/512 clients over both loopback TCP and the in-process memnet
// transport — their delta is the kernel socket cost per episode —
// netbarrier AllReduce at 8/64 on both transports, the placement-policy
// simulation with its simsync-ns/op quality metric, and the hierarchical
// fleet at 2/4 leaves with 64/256 clients)
// via `go test -bench` and writes the parsed results as BENCH_<n>.json,
// one file per PR. Future PRs regenerate with the next -n and diff against
// the committed history, so perf claims land as measured before/afters
// (ROADMAP item 3).
//
// Run it from the repository root:
//
//	benchtraj -n 6              # writes BENCH_6.json
//	benchtraj -n 7 -benchtime 1000x -out -
//
// Numbers are host-dependent; the trajectory is meaningful within one
// host (CI runs on one runner class), not across machines. The JSON
// records GOMAXPROCS and the Go version so a host change is visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// suite is the fixed benchmark set every BENCH_<n>.json covers. Adding a
// benchmark here grows the trajectory for all future PRs; removing one
// breaks the diff chain, so don't.
var suite = []struct {
	Pkg   string // package path relative to the module root
	Bench string // -bench regex
}{
	{".", "BenchmarkWaiterPolicies|BenchmarkRuntimeBarriers"},
	{"./internal/netbarrier", "BenchmarkNetBarrier|BenchmarkNetAllReduce"},
	{"./internal/barriersim", "BenchmarkPlacementPolicies"},
	{"./internal/shardbarrier", "BenchmarkHierarchical"},
}

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"` // package-qualified: internal/netbarrier.BenchmarkNetBarrier/clients-64
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int    `json:"b_per_op,omitempty"`
	AllocsPerOp *int    `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric columns (e.g. the placement
	// benchmarks' simsync-ns/op quality metric), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches go test's benchmark output: the fixed ns/op column,
// then any mix of -benchmem columns and custom ReportMetric columns,
// captured as a tail of value/unit pairs:
//
//	BenchmarkFoo/bar-8   300   1234 ns/op   5678 simsync-ns/op   16 B/op   2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op((?:\s+[0-9.]+ \S+)*)$`)

// metricPair splits the tail into its value/unit pairs.
var metricPair = regexp.MustCompile(`([0-9.]+) (\S+)`)

// parseBench extracts the Results from one `go test -bench` run's output,
// qualifying names with pkg.
func parseBench(pkg string, out []byte) ([]Result, error) {
	var rs []Result
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchtraj: bad iteration count in %q: %v", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchtraj: bad ns/op in %q: %v", line, err)
		}
		r := Result{Name: strings.TrimPrefix(pkg+"/", "./") + m[1], Iters: iters, NsPerOp: ns}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchtraj: bad metric in %q: %v", line, err)
			}
			switch unit := pair[2]; unit {
			case "B/op":
				b := int(v)
				r.BytesPerOp = &b
			case "allocs/op":
				a := int(v)
				r.AllocsPerOp = &a
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("benchtraj: no benchmark lines in output:\n%s", out)
	}
	return rs, nil
}

func main() {
	var (
		n         = flag.Int("n", 0, "PR number; output defaults to BENCH_<n>.json")
		benchtime = flag.String("benchtime", "300x", "go test -benchtime value (a fixed count keeps runs comparable)")
		out       = flag.String("out", "", `output path ("-" for stdout; default BENCH_<n>.json)`)
	)
	flag.Parse()
	if *n == 0 && *out == "" {
		fmt.Fprintln(os.Stderr, "benchtraj: -n (or -out) is required")
		os.Exit(2)
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%d.json", *n)
	}

	var results []Result
	for _, s := range suite {
		fmt.Fprintf(os.Stderr, "benchtraj: %s -bench '%s' -benchtime %s\n", s.Pkg, s.Bench, *benchtime)
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", s.Bench,
			"-benchtime", *benchtime, "-benchmem", s.Pkg)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %s failed: %v\n%s", s.Pkg, err, raw)
			os.Exit(1)
		}
		rs, err := parseBench(s.Pkg, raw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, rs...)
	}

	doc := map[string]any{
		"pr":         *n,
		"generated":  time.Now().UTC().Format(time.RFC3339),
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"benchtime":  *benchtime,
		"results":    results,
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchtraj: %d results -> %s\n", len(results), *out)
	}
}
