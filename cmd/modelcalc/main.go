// Command modelcalc prints the paper's analytic model (Algorithm 1) step
// by step for one configuration: the subset partition along the last
// processor's path, each subset's arrival and release times, and the
// resulting synchronization delay — the worked example of §3.
//
// Usage:
//
//	modelcalc -p 4096 -degree 4 -sigma 0.25ms [-tc 20us]
//	modelcalc -p 4096 -sigma 0.25ms -sweep      # all full-tree degrees
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"softbarrier/internal/model"
)

func main() {
	var (
		p      = flag.Int("p", 4096, "number of processors (must be degree^L)")
		degree = flag.Int("degree", 4, "combining tree degree")
		sigma  = flag.Duration("sigma", 250*time.Microsecond, "arrival time standard deviation")
		tc     = flag.Duration("tc", 20*time.Microsecond, "counter update time")
		sweep  = flag.Bool("sweep", false, "evaluate every full-tree degree instead of one")
	)
	flag.Parse()

	if *sweep {
		fmt.Printf("analytic sweep: p=%d σ=%v t_c=%v\n\n", *p, *sigma, *tc)
		fmt.Printf("%8s %7s %14s\n", "degree", "levels", "delay")
		for _, e := range model.EstimateSweep(*p, sigma.Seconds(), tc.Seconds()) {
			fmt.Printf("%8d %7d %14v\n", e.Degree, e.Levels, dur(e.Delay))
		}
		best := model.EstimateOptimalDegree(*p, sigma.Seconds(), tc.Seconds())
		fmt.Printf("\nrecommended degree: %d (estimated delay %v)\n", best.Degree, dur(best.Delay))
		return
	}

	b, err := model.Estimate(model.Params{P: *p, Degree: *degree, Sigma: sigma.Seconds(), Tc: tc.Seconds()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("Algorithm 1: p=%d, degree=%d, L=%d levels, σ=%v, t_c=%v\n\n", *p, *degree, b.Levels, *sigma, *tc)
	fmt.Printf("%8s %10s %14s %14s %14s\n", "subset", "|S_l|", "P_before", "T_arr", "T_rel")
	for l := 0; l < b.Levels; l++ {
		pb := model.PBefore(*degree, l, b.Levels)
		pbs := fmt.Sprintf("%.4f", pb)
		if l == b.Levels-1 {
			pbs += "→mid" // Algorithm 1's earliest-subset substitution
		}
		fmt.Printf("%8s %10d %14s %14v %14v\n",
			fmt.Sprintf("S_%d", l), model.SubsetSize(*degree, l), pbs,
			dur(b.SubsetArrival[l]), dur(b.SubsetRelease[l]))
	}
	fmt.Printf("%8s %10d %14s %14v %14v\n", "last", 1, "(Eq. 5)",
		dur(b.LastArrival), dur(b.LastRelease))
	fmt.Printf("\nsynchronization delay (Eq. 8): %v", dur(b.Delay))
	if b.CriticalSubset >= 0 {
		fmt.Printf("   (critical: subset S_%d)\n", b.CriticalSubset)
	} else {
		fmt.Printf("   (critical: the last processor's own path)\n")
	}
}

func dur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second)).Round(10 * time.Nanosecond)
}
