package softbarrier

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRecommendBalancedWorkload(t *testing.T) {
	rec := Recommend(Profile{P: 64, Sigma: 0, Tc: 20e-6})
	if rec.Degree != 4 {
		t.Errorf("degree %d for balanced load, want 4", rec.Degree)
	}
	if rec.Dynamic || rec.Fuzzy {
		t.Errorf("balanced plain barrier got dynamic=%v fuzzy=%v", rec.Dynamic, rec.Fuzzy)
	}
	if rec.Rationale == "" {
		t.Error("empty rationale")
	}
}

func TestRecommendHeavyImbalanceWidensTree(t *testing.T) {
	rec := Recommend(Profile{P: 64, Sigma: 100 * 20e-6, Tc: 20e-6})
	if rec.Degree < 16 {
		t.Errorf("degree %d under heavy imbalance, want wide", rec.Degree)
	}
}

func TestRecommendSystemicEnablesDynamic(t *testing.T) {
	rec := Recommend(Profile{P: 64, Sigma: 1e-4, Systemic: true})
	if !rec.Dynamic {
		t.Error("systemic imbalance should enable dynamic placement")
	}
	if !strings.Contains(rec.Rationale, "systemic") {
		t.Errorf("rationale does not mention systemic imbalance: %s", rec.Rationale)
	}
}

func TestRecommendSlackThreshold(t *testing.T) {
	// Slack below 2σ: unpredictable arrival order, dynamic off.
	low := Recommend(Profile{P: 64, Sigma: 1e-3, Slack: 1e-3})
	if low.Dynamic {
		t.Error("slack < 2σ should not enable dynamic placement")
	}
	if !low.Fuzzy {
		t.Error("any slack should still suggest fuzzy usage")
	}
	// Ample slack: dynamic on.
	high := Recommend(Profile{P: 64, Sigma: 1e-3, Slack: 5e-3})
	if !high.Dynamic {
		t.Error("slack ≥ 2σ should enable dynamic placement")
	}
}

func TestRecommendPanics(t *testing.T) {
	for _, pr := range []Profile{
		{P: 0},
		{P: 4, Sigma: -1},
		{P: 4, Tc: -1},
		{P: 4, Slack: -1},
	} {
		pr := pr
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("profile %+v did not panic", pr)
				}
			}()
			Recommend(pr)
		}()
	}
}

func TestPlanBuildsWorkingBarrier(t *testing.T) {
	for _, pr := range []Profile{
		{P: 8, Sigma: 0},
		{P: 8, Sigma: 1e-3, Systemic: true},
		{P: 8, Sigma: 1e-4, Slack: 1e-3, Systemic: true, Rings: []int{4, 4}},
	} {
		b, rec := Plan(pr)
		if b.Participants() != pr.P {
			t.Fatalf("%+v: built barrier for %d participants", pr, b.Participants())
		}
		if rec.Dynamic {
			if _, ok := b.(*DynamicBarrier); !ok {
				t.Fatalf("%+v: recommendation says dynamic but built %T", pr, b)
			}
		}
		checkBarrier(t, b, pr.P, 10)
	}
}

func TestGroupRunSynchronizesSteps(t *testing.T) {
	const p, steps = 6, 20
	g := NewGroup(NewCombiningTree(p, 4))
	if g.Workers() != p {
		t.Fatalf("Workers = %d", g.Workers())
	}
	var perStep [steps]atomic.Int32
	g.Run(steps, func(id, step int) {
		perStep[step].Add(1)
		// Everything from earlier steps must be complete.
		for s := 0; s < step; s++ {
			if perStep[s].Load() != p {
				t.Errorf("worker %d at step %d saw incomplete step %d", id, step, s)
			}
		}
	})
	for s := 0; s < steps; s++ {
		if perStep[s].Load() != p {
			t.Fatalf("step %d has %d arrivals", s, perStep[s].Load())
		}
	}
}

func TestGroupRunFuzzyOverlap(t *testing.T) {
	const p, steps = 4, 10
	g := NewGroup(NewMCSTree(p, 2))
	var slackRuns atomic.Int32
	g.RunFuzzy(steps,
		func(id, step int) {
			if id == 0 {
				time.Sleep(200 * time.Microsecond) // imbalance
			}
		},
		func(id, step int) { slackRuns.Add(1) },
	)
	if got := slackRuns.Load(); got != p*steps {
		t.Fatalf("slack function ran %d times, want %d", got, p*steps)
	}
	// Nil functions must be allowed.
	g.RunFuzzy(2, nil, nil)
}

func TestGroupRunFuzzyNeedsPhased(t *testing.T) {
	g := NewGroup(plainBarrier{NewCentral(2)})
	defer func() {
		if recover() == nil {
			t.Fatal("RunFuzzy on a plain barrier did not panic")
		}
	}()
	g.RunFuzzy(1, nil, nil)
}

// plainBarrier hides the phased methods of an underlying barrier.
type plainBarrier struct{ b Barrier }

func (p plainBarrier) Wait(id int)       { p.b.Wait(id) }
func (p plainBarrier) Participants() int { return p.b.Participants() }

func TestGroupRunErrStopsAfterFailingStep(t *testing.T) {
	const p, steps = 4, 50
	g := NewGroup(NewCombiningTree(p, 4))
	var maxStep atomic.Int32
	wantErr := errors.New("worker 2 exploded")
	err := g.RunErr(steps, func(id, step int) error {
		if s := int32(step); s > maxStep.Load() {
			maxStep.Store(s)
		}
		if id == 2 && step == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// Workers finish the failing step and may start at most one more.
	if got := maxStep.Load(); got > 4 {
		t.Fatalf("work continued to step %d after failure at 3", got)
	}
}

func TestGroupRunErrNilOnSuccess(t *testing.T) {
	g := NewGroup(NewCentral(3))
	calls := atomic.Int32{}
	if err := g.RunErr(10, func(id, step int) error {
		calls.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 30 {
		t.Fatalf("calls = %d, want 30", calls.Load())
	}
}

func TestGroupRunErrEarliestStepWins(t *testing.T) {
	const p = 3
	g := NewGroup(NewCombiningTree(p, 2))
	early := errors.New("early")
	late := errors.New("late")
	err := g.RunErr(10, func(id, step int) error {
		switch {
		case id == 1 && step == 2:
			return early
		case id == 0 && step == 3:
			return late
		}
		return nil
	})
	if err != early {
		t.Fatalf("err = %v, want the earliest failing step's error", err)
	}
}

// fixedSigma is a SigmaSource returning a constant estimate.
type fixedSigma struct {
	sigma    float64
	episodes uint64
}

func (s fixedSigma) MeasuredSigma() (float64, uint64) { return s.sigma, s.episodes }

// TestRecommendClampsDegreeToParticipants pins the planner contract that
// a Recommendation is always buildable: Degree ∈ [2, max(2, p)] no matter
// how wide a tree the analytic model asks for. Small cohorts with large σ
// are exactly where the model overshoots — σ ≥ 1 ms wants degree ≈ 64 at
// p = 64, so without the clamp p = 3 would be handed degree 64.
func TestRecommendClampsDegreeToParticipants(t *testing.T) {
	cases := []struct {
		name string
		pr   Profile
		want int
	}{
		{"p1-huge-sigma", Profile{P: 1, Sigma: 1}, 2},
		{"p2-huge-sigma", Profile{P: 2, Sigma: 1}, 2},
		{"p3-huge-sigma", Profile{P: 3, Sigma: 1}, 3},
		{"p5-huge-sigma", Profile{P: 5, Sigma: 1}, 5},
		{"p64-tiny-sigma-floor", Profile{P: 64, Sigma: 1e-6}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := Recommend(c.pr)
			if rec.Degree != c.want {
				t.Errorf("Recommend(%+v).Degree = %d, want %d", c.pr, rec.Degree, c.want)
			}
			if b := rec.Build(c.pr); b == nil {
				t.Error("clamped recommendation did not build")
			}
		})
	}
}

// TestRecommendMeasuredClamps checks the clamp also guards the measured
// path: a live σ estimate far above the assumed one cannot push the
// degree past p, and an unseeded source (0 episodes) leaves the assumed
// σ — and its degree — untouched.
func TestRecommendMeasuredClamps(t *testing.T) {
	rec := RecommendMeasured(Profile{P: 3, Sigma: 0}, fixedSigma{sigma: 1, episodes: 100})
	if rec.Degree != 3 {
		t.Errorf("measured σ=1s at p=3: Degree = %d, want 3", rec.Degree)
	}
	rec = RecommendMeasured(Profile{P: 64, Sigma: 1e-6}, fixedSigma{sigma: 1, episodes: 0})
	if rec.Degree != 2 {
		t.Errorf("unseeded source should keep the assumed σ: Degree = %d, want 2", rec.Degree)
	}
}

// TestRecommendConfigMatchesRecommend pins the allocation-free path to the
// full recommendation: same degree, same dynamic decision, across the
// profile space.
func TestRecommendConfigMatchesRecommend(t *testing.T) {
	profiles := []Profile{
		{P: 1},
		{P: 2, Sigma: 1e-4},
		{P: 64, Sigma: 0, Tc: 20e-6},
		{P: 64, Sigma: 100 * 20e-6, Tc: 20e-6},
		{P: 64, Sigma: 1e-4, Systemic: true},
		{P: 64, Sigma: 1e-3, Slack: 1e-3},
		{P: 64, Sigma: 1e-3, Slack: 5e-3},
		{P: 1024, Sigma: 3e-4},
	}
	for _, pr := range profiles {
		rec := Recommend(pr)
		degree, dynamic := RecommendConfig(pr)
		if degree != rec.Degree || dynamic != rec.Dynamic {
			t.Errorf("RecommendConfig(%+v) = (%d, %v), want Recommend's (%d, %v)",
				pr, degree, dynamic, rec.Degree, rec.Dynamic)
		}
	}
}

// TestRecommendConfigZeroAlloc gates the hot re-plan path: netbarrier
// sessions and reconfigurable barriers consult the recommender on the
// steady-state release path (default cadence: every episode), so it must
// stay off the heap.
func TestRecommendConfigZeroAlloc(t *testing.T) {
	pr := Profile{P: 64, Sigma: 3e-4, Tc: 20e-6, Slack: 1e-3}
	avg := testing.AllocsPerRun(100, func() {
		RecommendConfig(pr)
	})
	if avg != 0 {
		t.Fatalf("RecommendConfig allocated %.2f times/op, want 0", avg)
	}
}

func TestRecommendConfigPanics(t *testing.T) {
	for _, pr := range []Profile{{P: 0}, {P: 4, Sigma: -1}, {P: 4, Tc: -1}, {P: 4, Slack: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RecommendConfig(%+v) did not panic", pr)
				}
			}()
			RecommendConfig(pr)
		}()
	}
}
